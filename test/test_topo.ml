(* The topology subsystem: graph generator properties (qcheck), the
   gradient rules, the neighbor-multicast path, the local-skew monitor,
   and the two byte-identity contracts the wiring refactor must keep -
   the default ring reproduces the hardcoded-era checksums, and the
   complete graph reproduces the legacy full-mesh broadcast. *)

module Graph = Csync_topo.Graph
module Gradient = Csync_topo.Gradient
module Soa = Csync_process.Soa
module Scale = Csync_harness.Scale
module Scenario = Csync_harness.Scenario
module Registry = Csync_harness.Registry
module Mon = Csync_obs.Monitor
module Mb = Csync_net.Message_buffer
module Delay = Csync_net.Delay
module Engine = Csync_sim.Engine
module Rng = Csync_sim.Rng
open Helpers

let t name f = Alcotest.test_case name `Quick f

(* ---------- generators ---------- *)

let graph_tests =
  [
    qcheck ~name:"ring is the legacy predecessor wiring"
      QCheck2.Gen.(pair (2 -- 120) (1 -- 119))
      (fun (n, d) ->
        let degree = min d (n - 1) in
        let g = Graph.ring ~n ~degree in
        let ok = ref (Graph.is_connected g) in
        for dst = 0 to n - 1 do
          if Graph.in_degree g dst <> degree then ok := false;
          for j = 0 to degree - 1 do
            if Graph.in_neighbor g ~dst j <> (dst - 1 - j + n) mod n then
              ok := false
          done
        done;
        !ok);
    qcheck ~name:"grid is symmetric, connected, degree 1..4"
      QCheck2.Gen.(pair (1 -- 15) (1 -- 15))
      (fun (rows, cols) ->
        QCheck2.assume (rows * cols > 1);
        let g = Graph.grid ~rows ~cols in
        Graph.is_symmetric g && Graph.is_connected g
        && Graph.min_in_degree g >= 1
        && Graph.max_in_degree g <= 4
        && Graph.edges g = 2 * ((rows * (cols - 1)) + (cols * (rows - 1)))
        && Graph.diameter g = rows - 1 + (cols - 1));
    qcheck ~name:"torus is symmetric, connected, degree <= 4"
      QCheck2.Gen.(pair (1 -- 10) (1 -- 10))
      (fun (rows, cols) ->
        QCheck2.assume (rows * cols > 1);
        let g = Graph.torus ~rows ~cols in
        Graph.is_symmetric g && Graph.is_connected g
        && Graph.max_in_degree g <= 4);
    qcheck ~name:"expander is symmetric, connected, 2(degree/2)-regular"
      QCheck2.Gen.(triple (4 -- 400) (2 -- 10) (0 -- 1000))
      (fun (n, degree, seed) ->
        let g = Graph.expander ~n ~degree ~seed in
        let half = max 1 (min (degree / 2) ((n - 1) / 2)) in
        Graph.is_symmetric g && Graph.is_connected g
        && Graph.min_in_degree g = 2 * half
        && Graph.max_in_degree g = 2 * half);
    qcheck ~name:"expander is a pure function of (n, degree, seed)"
      QCheck2.Gen.(pair (8 -- 300) (0 -- 100))
      (fun (n, seed) ->
        let adj g =
          List.init (Graph.n g) (fun dst ->
              List.init (Graph.in_degree g dst) (Graph.in_neighbor g ~dst))
        in
        adj (Graph.expander ~n ~degree:6 ~seed)
        = adj (Graph.expander ~n ~degree:6 ~seed));
    qcheck ~name:"hier_tree is symmetric, connected, clique degree"
      QCheck2.Gen.(triple (2 -- 200) (2 -- 16) (2 -- 5))
      (fun (n, cluster, branching) ->
        QCheck2.assume (n > cluster);
        let g = Graph.hier_tree ~n ~cluster ~branching in
        Graph.is_symmetric g && Graph.is_connected g
        (* every node hears at least its clique *)
        && Graph.min_in_degree g >= min cluster (n mod cluster) - 1);
    t "different expander seeds rewire" (fun () ->
        let a = Graph.expander ~n:200 ~degree:8 ~seed:1 in
        let b = Graph.expander ~n:200 ~degree:8 ~seed:2 in
        let differs = ref false in
        for dst = 0 to 199 do
          for j = 0 to Graph.in_degree a dst - 1 do
            if Graph.in_neighbor a ~dst j <> Graph.in_neighbor b ~dst j then
              differs := true
          done
        done;
        check_true "seed 2 rewires somewhere" !differs);
    t "complete graph is the legacy mesh" (fun () ->
        let g = Graph.complete ~n:5 in
        check_int "diameter" 1 (Graph.diameter g);
        check_int "edges" 20 (Graph.edges g);
        check_int "tolerated" 1 (Graph.tolerated_faults g);
        (* Broadcast lists are 0 .. n-1 for every source - the full-mesh
           loop order, byte for byte. *)
        for src = 0 to 4 do
          let order = ref [] in
          Graph.iter_bcast g ~src (fun dst -> order := dst :: !order);
          Alcotest.(check (list int))
            "bcast order" [ 0; 1; 2; 3; 4 ]
            (List.rev !order)
        done);
    t "distance queries" (fun () ->
        let g = Graph.ring ~n:10 ~degree:1 in
        (* Undirected skeleton of the 1-ring is the 10-cycle. *)
        check_int "diameter" 5 (Graph.diameter g);
        Alcotest.(check (option int)) "hop 3" (Some 3) (Graph.distance g 0 3);
        Alcotest.(check (option int)) "wrap" (Some 2) (Graph.distance g 0 8);
        check_int "eccentricity" 5 (Graph.eccentricity g ~from:7);
        let d = Graph.distances g ~from:0 in
        check_int "self" 0 d.(0);
        check_int "antipode" 5 d.(5));
    t "generators validate arguments" (fun () ->
        check_raises_invalid "ring n" (fun () ->
            ignore (Graph.ring ~n:1 ~degree:1));
        check_raises_invalid "ring degree" (fun () ->
            ignore (Graph.ring ~n:4 ~degree:4));
        check_raises_invalid "grid" (fun () ->
            ignore (Graph.grid ~rows:1 ~cols:1));
        check_raises_invalid "expander n" (fun () ->
            ignore (Graph.expander ~n:3 ~degree:2 ~seed:0));
        check_raises_invalid "complete" (fun () -> ignore (Graph.complete ~n:1)));
  ]

(* ---------- gradient rules ---------- *)

let gradient_tests =
  [
    t "degradation rule matches the sweep's" (fun () ->
        check_int "empty" 0 (Gradient.g_of ~f:5 ~count:0);
        check_int "four" 1 (Gradient.g_of ~f:5 ~count:4);
        check_int "capped by f" 2 (Gradient.g_of ~f:2 ~count:100));
    t "target interpolates toward the midpoint" (fun () ->
        check_float "gain 1 is the full jump" 7. (Gradient.target ~gain:1. ~own:3. ~mid:7.);
        check_float "gain 1/2 is halfway" 5. (Gradient.target ~gain:0.5 ~own:3. ~mid:7.);
        check_float "already there" 3. (Gradient.target ~gain:1. ~own:3. ~mid:3.));
    t "kappa closed form and gain validation" (fun () ->
        check_float "2(eps + 2 rho P)/gain"
          (2. *. (0.001 +. (2. *. 1e-5 *. 10.)))
          (Gradient.kappa ~rho:1e-5 ~eps:0.001 ~period:10. ~gain:1.);
        check_float "halved gain doubles the allowance"
          (4. *. (0.001 +. (2. *. 1e-5 *. 10.)))
          (Gradient.kappa ~rho:1e-5 ~eps:0.001 ~period:10. ~gain:0.5);
        check_raises_invalid "gain 0" (fun () ->
            ignore (Gradient.kappa ~rho:1e-5 ~eps:0.001 ~period:10. ~gain:0.));
        check_raises_invalid "gain > 1" (fun () ->
            ignore (Gradient.kappa ~rho:1e-5 ~eps:0.001 ~period:10. ~gain:1.5)));
    t "skew metrics respect edges and the ok mask" (fun () ->
        let g = Graph.ring ~n:4 ~degree:1 in
        let value = function 0 -> 0. | 1 -> 1. | 2 -> 3. | _ -> 10. in
        let all _ = true in
        check_float "global" 10. (Gradient.global_skew ~n:4 ~ok:all ~value);
        (* Edges (src -> dst): 3-0, 0-1, 1-2, 2-3; worst |diff| = |10 - 0|. *)
        check_float "local" 10. (Gradient.local_skew ~graph:g ~ok:all ~value);
        let without0 p = p <> 0 in
        check_float "masked local" 7.
          (Gradient.local_skew ~graph:g ~ok:without0 ~value));
    t "gradient check accepts within kappa, rejects beyond" (fun () ->
        let g = Graph.ring ~n:6 ~degree:1 in
        let tight = function p -> 0.1 *. float_of_int (min p (6 - p)) in
        let margin, pairs =
          Gradient.check ~graph:g ~ok:(fun _ -> true) ~value:tight ~kappa:0.11
            ~sources:[ 0 ]
        in
        check_true "holds" (margin <= 0.);
        check_int "pairs from one source" 5 pairs;
        let margin, _ =
          Gradient.check ~graph:g ~ok:(fun _ -> true) ~value:tight ~kappa:0.05
            ~sources:[ 0 ]
        in
        check_true "violated under a smaller kappa" (margin > 0.));
  ]

(* ---------- the hardcoded-ring checksum contract ---------- *)

(* Golden trajectories recorded on the pre-topology scale stack (PR 7):
   replacing the hardcoded predecessor ring with Graph.ring must leave
   event counts, merge checksums and final state checksums bit-exact,
   whether the ring is the implicit default or passed explicitly. *)
let golden_cases =
  [
    ( "n=500 faulty",
      (fun ?graph () ->
        let m =
          Soa.create ?graph ~n:500 ~degree:7 ~f:2 ~seed:11 ~dispersion:0.5 ()
        in
        Soa.crash m 17;
        Soa.set_pull m 42 0.3;
        Soa.set_pull m 499 (-0.2);
        let s = Scale.run ~jobs:1 ~rounds:3 m in
        (s.Scale.events, s.Scale.checksum, Scale.state_checksum m)),
      Graph.ring ~n:500 ~degree:7,
      (11907, -2303805237783978019, 3861587819302134822) );
    ( "n=1000 clean",
      (fun ?graph () ->
        let m = Soa.create ?graph ~n:1000 ~degree:8 ~f:2 ~seed:1 () in
        let s = Scale.run ~jobs:1 ~rounds:2 m in
        (s.Scale.events, s.Scale.checksum, Scale.state_checksum m)),
      Graph.ring ~n:1000 ~degree:8,
      (18000, 3668795842935423207, 1321678982338770021) );
    ( "n=64 small",
      (fun ?graph () ->
        let m = Soa.create ?graph ~n:64 ~degree:3 ~f:1 ~seed:7 () in
        let s = Scale.run ~jobs:1 ~rounds:4 m in
        (s.Scale.events, s.Scale.checksum, Scale.state_checksum m)),
      Graph.ring ~n:64 ~degree:3,
      (1024, 110781624145683342, -2703970182535417761) );
  ]

let checksum_regression_tests =
  List.map
    (fun
      ( name,
        (run : ?graph:Graph.t -> unit -> int * int * int),
        ring,
        (events, checksum, state) )
    ->
      t (Printf.sprintf "PR 7 golden trajectory: %s" name) (fun () ->
          let check_triple tag (e, c, s) =
            check_int (tag ^ " events") events e;
            check_true (tag ^ " merge checksum") (c = checksum);
            check_true (tag ^ " state checksum") (s = state)
          in
          check_triple "default ring" (run ());
          check_triple "explicit Graph.ring" (run ~graph:ring ())))
    golden_cases

(* ---------- neighbor multicast ---------- *)

let drain engine =
  let log = ref [] in
  Engine.run_until engine ~until:10. ~handler:(fun tm d ->
      log := (tm, d.Mb.src, d.Mb.dst) :: !log);
  List.rev !log

let multicast_tests =
  [
    t "broadcast follows the graph's neighborhood" (fun () ->
        let engine = Engine.create () in
        let graph = Graph.ring ~n:5 ~degree:2 in
        let buffer =
          Mb.create ~n:5 ~graph ~delay:(Delay.constant 0.01) ~engine ()
        in
        Mb.broadcast buffer ~src:2 "m";
        (* dst hears dst-1, dst-2: src 2's listeners are 3 and 4, so the
           multicast hits itself plus those, ascending. *)
        Alcotest.(check (list int))
          "self + out-neighbors" [ 2; 3; 4 ]
          (List.map (fun (_, _, dst) -> dst) (drain engine));
        check_int "sent" 3 (Mb.sent_count buffer));
    t "complete graph multicast is the legacy broadcast, byte for byte"
      (fun () ->
        let run graph =
          let engine = Engine.create () in
          let delay =
            Delay.uniform ~delta:1e-3 ~eps:1e-4 ~rng:(Rng.create 9)
          in
          let buffer = Mb.create ~n:6 ?graph ~delay ~engine () in
          Mb.broadcast buffer ~src:1 "a";
          Mb.broadcast buffer ~src:4 "b";
          drain engine
        in
        let legacy = run None in
        let meshed = run (Some (Graph.complete ~n:6)) in
        check_int "some deliveries" 12 (List.length legacy);
        check_true "same (time, src, dst) stream" (legacy = meshed));
    t "point-to-point send is never filtered" (fun () ->
        let engine = Engine.create () in
        let graph = Graph.ring ~n:5 ~degree:1 in
        let buffer =
          Mb.create ~n:5 ~graph ~delay:(Delay.constant 0.01) ~engine ()
        in
        (* 0 -> 2 is not a graph edge; send still delivers. *)
        Mb.send buffer ~src:0 ~dst:2 "direct";
        Alcotest.(check (list int))
          "delivered" [ 2 ]
          (List.map (fun (_, _, dst) -> dst) (drain engine)));
    t "graph size must match n" (fun () ->
        check_raises_invalid "mismatch" (fun () ->
            ignore
              (Mb.create ~n:5
                 ~graph:(Graph.ring ~n:6 ~degree:1)
                 ~delay:(Delay.constant 0.01) ~engine:(Engine.create ()) ())));
  ]

(* ---------- full-mesh scenario identity ---------- *)

(* The cluster runner with an explicit complete graph must reproduce the
   legacy graphless run exactly - measurements, trace and message counts -
   with telemetry off and on. *)
let scenario_identity_tests =
  [
    t "complete-graph scenario is bit-exact vs legacy, monitor off and on"
      (fun () ->
        let scenario graph =
          {
            (Scenario.with_standard_faults (Scenario.default ~seed:5 (params ()))) with
            Scenario.rounds = 6;
            trace = true;
            graph;
          }
        in
        let fingerprint (r : Scenario.result) =
          ( r.Scenario.max_skew,
            r.Scenario.steady_skew,
            r.Scenario.round_spread,
            Array.to_list r.Scenario.adjustments,
            r.Scenario.messages,
            r.Scenario.dropped,
            r.Scenario.trace )
        in
        let plain_legacy = fingerprint (Scenario.run (scenario None)) in
        let plain_mesh =
          fingerprint (Scenario.run (scenario (Some (Graph.complete ~n:7))))
        in
        check_true "telemetry off" (plain_legacy = plain_mesh);
        let monitored graph =
          let mon = Mon.create () in
          Mon.install mon;
          Fun.protect ~finally:Mon.clear_installed (fun () ->
              let fp = fingerprint (Scenario.run (scenario graph)) in
              (fp, Mon.checks_performed mon, Mon.violations_total mon))
        in
        let mon_legacy, checks_l, viol_l = monitored None in
        let mon_mesh, checks_m, viol_m = monitored (Some (Graph.complete ~n:7)) in
        check_true "telemetry on" (mon_legacy = mon_mesh);
        check_int "same checks" checks_l checks_m;
        check_int "same violations" viol_l viol_m;
        check_true "monitored = unmonitored measurements"
          (plain_legacy = mon_legacy));
  ]

(* ---------- the local-skew monitor ---------- *)

let monitor_tests =
  [
    t "local_skew check flags a per-hop violation" (fun () ->
        let mon = Mon.create ~checks:[ Mon.Local_skew ] () in
        let h = Mon.Local_skew.handle mon ~kappa:0.5 in
        check_true "active" (Mon.Local_skew.active h);
        Mon.Local_skew.check h ~round:1 ~time:10. ~dist:0 ~skew:99.;
        Mon.Local_skew.check h ~round:1 ~time:10. ~dist:2 ~skew:0.9;
        Mon.Local_skew.check h ~round:2 ~time:20. ~dist:1 ~skew:0.6;
        check_int "distance-0 pair ignored" 2 (Mon.checks_performed mon);
        check_int "one violation" 1 (Mon.violations_total mon);
        (match Mon.first_violation mon with
         | Some v ->
           check_true "monitor" (v.Mon.monitor = Mon.Local_skew);
           Alcotest.(check (option int)) "round" (Some 2) v.Mon.round;
           check_float "measured" 0.6 v.Mon.measured;
           check_float "bound" 0.5 v.Mon.bound
         | None -> Alcotest.fail "expected a recorded violation"));
    t "tighten shrinks the allowance" (fun () ->
        let mon = Mon.create ~checks:[ Mon.Local_skew ] ~tighten:0.5 () in
        let h = Mon.Local_skew.handle mon ~kappa:1.0 in
        Mon.Local_skew.check h ~round:1 ~time:1. ~dist:1 ~skew:0.8;
        check_int "0.8 > 0.5 * 1.0" 1 (Mon.violations_total mon));
    t "disabled monitors mint no-op handles" (fun () ->
        let h = Mon.Local_skew.handle Mon.none ~kappa:1.0 in
        check_bool "inactive" false (Mon.Local_skew.active h);
        Mon.Local_skew.check h ~round:1 ~time:1. ~dist:1 ~skew:99.;
        check_int "nothing recorded" 0 (Mon.violations_total Mon.none));
  ]

(* ---------- worker-count identity of the topology experiment ---------- *)

let experiment_identity_tests =
  [
    t "monitored E16 tables byte-identical at 1 and 4 workers" (fun () ->
        let e16 =
          List.filter
            (fun e -> String.equal e.Csync_harness.Experiment.id "E16")
            Registry.all
        in
        check_int "E16 exists" 1 (List.length e16);
        let render jobs =
          let mon = Mon.create () in
          Mon.install mon;
          let out =
            Fun.protect ~finally:Mon.clear_installed (fun () ->
                Registry.run_list ~jobs ~quick:true e16
                |> List.concat_map (fun (_, tables) ->
                       List.map Csync_metrics.Table.to_csv tables)
                |> String.concat "\n")
          in
          (out, Mon.checks_performed mon, Mon.violations_total mon)
        in
        let out1, checks1, viol1 = render 1 in
        let out4, checks4, viol4 = render 4 in
        check_true "tables nonempty" (String.length out1 > 0);
        Alcotest.(check string) "tables" out1 out4;
        check_int "monitor checks" checks1 checks4;
        check_true "local-skew checks ran" (checks1 > 0);
        check_int "monitor violations" viol1 viol4;
        check_int "no violations" 0 viol1);
  ]

let suite =
  List.concat
    [
      graph_tests;
      gradient_tests;
      checksum_regression_tests;
      multicast_tests;
      scenario_identity_tests;
      monitor_tests;
      experiment_identity_tests;
    ]
