(* Tests for the metrics library: statistics, tables and series. *)

module Stats = Csync_metrics.Stats
module Table = Csync_metrics.Table
module Series = Csync_metrics.Series
module Histogram = Csync_metrics.Histogram
open Helpers

let t name f = Alcotest.test_case name `Quick f

let stats_tests =
  [
    t "mean/min/max" (fun () ->
        let a = [| 1.; 2.; 3.; 4. |] in
        check_float "mean" 2.5 (Stats.mean a);
        check_float "min" 1. (Stats.minimum a);
        check_float "max" 4. (Stats.maximum a));
    t "empty arrays raise" (fun () ->
        check_raises_invalid "mean" (fun () -> ignore (Stats.mean [||]));
        check_raises_invalid "max" (fun () -> ignore (Stats.maximum [||])));
    t "stddev" (fun () ->
        check_float "constant" 0. (Stats.stddev [| 5.; 5.; 5. |]);
        check_float "spread" 2. (Stats.stddev [| 0.; 4.; 0.; 4. |]));
    t "percentile endpoints and interpolation" (fun () ->
        let a = [| 10.; 0.; 20. |] in
        check_float "p0" 0. (Stats.percentile a 0.);
        check_float "p100" 20. (Stats.percentile a 100.);
        check_float "p50" 10. (Stats.percentile a 50.);
        check_float "p25" 5. (Stats.percentile a 25.);
        check_raises_invalid "range" (fun () -> ignore (Stats.percentile a 101.)));
    t "percentile does not mutate" (fun () ->
        let a = [| 3.; 1.; 2. |] in
        ignore (Stats.percentile a 50.);
        Alcotest.(check (array (float 0.))) "unchanged" [| 3.; 1.; 2. |] a);
    t "max_pairwise_diff" (fun () ->
        check_float "spread" 7. (Stats.max_pairwise_diff [| 3.; -2.; 5. |]);
        check_float "singleton" 0. (Stats.max_pairwise_diff [| 3. |]));
    t "max_abs" (fun () ->
        check_float "abs" 5. (Stats.max_abs [| 3.; -5.; 2. |]));
    t "geometric_fit recovers the ratio" (fun () ->
        let a = [| 16.; 8.; 4.; 2.; 1. |] in
        check_float_tol 1e-9 "half" 0.5 (Stats.geometric_fit a);
        check_raises_invalid "short" (fun () -> ignore (Stats.geometric_fit [| 1. |]));
        check_raises_invalid "nonpositive" (fun () ->
            ignore (Stats.geometric_fit [| 1.; 0. |])));
  ]

let table_tests =
  [
    t "rows must match header width" (fun () ->
        let tbl = Table.make ~title:"t" ~columns:[ "a"; "b" ] () in
        let tbl = Table.add_row tbl [ "1"; "2" ] in
        check_int "one row" 1 (List.length (Table.rows tbl));
        check_raises_invalid "width" (fun () -> ignore (Table.add_row tbl [ "1" ])));
    t "render aligns and includes notes" (fun () ->
        let tbl =
          Table.make ~title:"demo" ~columns:[ "col"; "x" ] ()
          |> fun tbl -> Table.add_row tbl [ "value"; "1" ]
          |> fun tbl -> Table.note tbl "hello"
        in
        let out = Format.asprintf "%a" Table.render tbl in
        check_true "title" (String.length out > 0);
        check_true "has note"
          (String.length out >= 5
           && Helpers.contains out "hello"
           && Helpers.contains out "value"));
    t "csv escaping" (fun () ->
        let tbl =
          Table.make ~title:"t" ~columns:[ "a"; "b" ] ()
          |> fun tbl -> Table.add_row tbl [ "x,y"; "q\"q" ]
        in
        let csv = Table.to_csv tbl in
        check_true "quoted comma" (Helpers.contains csv "\"x,y\"");
        check_true "doubled quote" (Helpers.contains csv "\"q\"\"q\""));
    t "cell formatters" (fun () ->
        Alcotest.(check string) "f" "1.5" (Table.cell_f 1.5);
        Alcotest.(check string) "e" "1.234e-04" (Table.cell_e 1.234e-4);
        Alcotest.(check string) "ratio" "0.50" (Table.cell_ratio 0.5));
  ]

let series_tests =
  [
    t "of_arrays and accessors" (fun () ->
        let s = Series.of_arrays ~label:"s" [| 1.; 2. |] [| 10.; 20. |] in
        check_int "length" 2 (Series.length s);
        Alcotest.(check (array (float 0.))) "ys" [| 10.; 20. |] (Series.ys s);
        Alcotest.(check (array (float 0.))) "xs" [| 1.; 2. |] (Series.xs s);
        check_true "last" (Series.last_y s = Some 20.);
        check_raises_invalid "mismatch" (fun () ->
            ignore (Series.of_arrays ~label:"s" [| 1. |] [| 1.; 2. |])));
    t "map_y" (fun () ->
        let s = Series.make ~label:"s" [ (0., 1.); (1., 2.) ] in
        Alcotest.(check (array (float 0.)))
          "doubled" [| 2.; 4. |]
          (Series.ys (Series.map_y (fun y -> 2. *. y) s)));
    t "sparkline has one glyph per point" (fun () ->
        let s = Series.make ~label:"s" [ (0., 0.); (1., 1.); (2., 0.5) ] in
        (* Each block glyph is 3 bytes of UTF-8 (or 1 byte for space). *)
        check_true "nonempty" (String.length (Series.sparkline s) >= 3));
    t "csv has a line per distinct x" (fun () ->
        let a = Series.make ~label:"a" [ (0., 1.); (1., 2.) ] in
        let b = Series.make ~label:"b" [ (1., 3.); (2., 4.) ] in
        let csv = Series.to_csv [ a; b ] in
        check_int "lines" 4 (List.length (String.split_on_char '\n' (String.trim csv))));
  ]

let histogram_tests =
  [
    t "validates arguments" (fun () ->
        check_raises_invalid "bounds" (fun () ->
            ignore (Histogram.create ~lo:1. ~hi:1. ~bins:4));
        check_raises_invalid "bins" (fun () ->
            ignore (Histogram.create ~lo:0. ~hi:1. ~bins:0));
        check_raises_invalid "empty" (fun () -> ignore (Histogram.of_array [||])));
    t "bins values correctly" (fun () ->
        let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
        List.iter (Histogram.add h) [ 0.; 1.; 3.; 9.99; 10. ];
        check_int "bin 0" 2 (Histogram.bin_count h 0);
        check_int "bin 1" 1 (Histogram.bin_count h 1);
        check_int "bin 4" 2 (Histogram.bin_count h 4);
        check_int "total" 5 (Histogram.count h));
    t "under/overflow" (fun () ->
        let h = Histogram.create ~lo:0. ~hi:1. ~bins:2 in
        Histogram.add h (-1.);
        Histogram.add h 2.;
        check_int "under" 1 (Histogram.underflow h);
        check_int "over" 1 (Histogram.overflow h);
        check_int "total counts them" 2 (Histogram.count h));
    t "bin_bounds partition the range" (fun () ->
        let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
        check_true "first" (Histogram.bin_bounds h 0 = (0., 2.));
        check_true "last" (Histogram.bin_bounds h 4 = (8., 10.)));
    t "mode_bin" (fun () ->
        let h = Histogram.of_array ~bins:4 [| 1.; 1.; 1.; 5.; 9. |] in
        check_int "mode" 0 (Histogram.mode_bin h));
    t "render does not raise" (fun () ->
        let h = Histogram.of_array [| 1.; 2.; 3. |] in
        ignore (Format.asprintf "%a" (Histogram.render ~width:20) h));
    t "NaN lands in invalid, not bin 0" (fun () ->
        let h = Histogram.create ~lo:0. ~hi:1. ~bins:2 in
        Histogram.add h Float.nan;
        Histogram.add h 0.1;
        check_int "invalid" 1 (Histogram.invalid h);
        check_int "bin 0 has only the real value" 1 (Histogram.bin_count h 0);
        check_int "total counts the NaN" 2 (Histogram.count h);
        let out = Format.asprintf "%a" (Histogram.render ~width:20) h in
        check_true "render reports invalid" (Helpers.contains out "invalid"));
    t "nonzero bins always render a mark" (fun () ->
        (* 1 count against a 1000-count mode truncates to a zero-width
           bar; the render must still show a mark. *)
        let h = Histogram.create ~lo:0. ~hi:2. ~bins:2 in
        for _ = 1 to 1000 do
          Histogram.add h 0.5
        done;
        Histogram.add h 1.5;
        let out = Format.asprintf "%a" (Histogram.render ~width:10) h in
        let lines =
          String.split_on_char '\n' out
          |> List.filter (fun l -> Helpers.contains l ")")
        in
        check_int "two bin lines" 2 (List.length lines);
        List.iter
          (fun l -> check_true "bar mark present" (Helpers.contains l "#"))
          lines);
    t "of_counts round-trips" (fun () ->
        let h = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
        List.iter (Histogram.add h) [ 0.1; 0.1; 0.6; 2.; -1.; Float.nan ];
        let counts = Array.init (Histogram.bins h) (Histogram.bin_count h) in
        let lo, hi = Histogram.range h in
        let h' =
          Histogram.of_counts ~lo ~hi ~counts
            ~underflow:(Histogram.underflow h) ~overflow:(Histogram.overflow h)
            ~invalid:(Histogram.invalid h) ~total:(Histogram.count h) ()
        in
        check_int "total" (Histogram.count h) (Histogram.count h');
        check_int "bin 0" 2 (Histogram.bin_count h' 0);
        check_int "under" 1 (Histogram.underflow h');
        check_int "over" 1 (Histogram.overflow h');
        check_int "invalid" 1 (Histogram.invalid h');
        check_raises_invalid "negative count" (fun () ->
            ignore
              (Histogram.of_counts ~lo ~hi ~counts:[| -1 |] ~underflow:0
                 ~overflow:0 ~invalid:0 ~total:0 ())));
    t "log bins give each decade per_decade bins" (fun () ->
        let h = Histogram.log ~lo:1e-3 ~hi:1e0 ~per_decade:4 in
        check_int "bins" 12 (Histogram.bins h);
        check_true "scheme" (Histogram.per_decade h = Some 4);
        (* 1e-3 lands in bin 0, 1e-2 in bin 4, 0.999e0 in the last bin *)
        Histogram.add h 1e-3;
        Histogram.add h 1e-2;
        Histogram.add h 0.999;
        check_int "bin 0" 1 (Histogram.bin_count h 0);
        check_int "bin 4" 1 (Histogram.bin_count h 4);
        check_int "last bin" 1 (Histogram.bin_count h 11);
        (* bounds are geometric and consecutive bins share an edge *)
        let b0_lo, b0_hi = Histogram.bin_bounds h 0 in
        let b1_lo, _ = Histogram.bin_bounds h 1 in
        check_float_tol 1e-12 "b0 lo" 1e-3 b0_lo;
        check_float_tol 1e-12 "edge shared" b0_hi b1_lo;
        check_raises_invalid "nonpositive lo" (fun () ->
            ignore (Histogram.log ~lo:0. ~hi:1. ~per_decade:4));
        check_raises_invalid "nonpositive per_decade" (fun () ->
            ignore (Histogram.log ~lo:1e-3 ~hi:1. ~per_decade:0)));
    t "log under/overflow and of_counts round-trip" (fun () ->
        let h = Histogram.log ~lo:1e-3 ~hi:1e0 ~per_decade:4 in
        List.iter (Histogram.add h) [ 1e-4; 2.; 5e-3; Float.nan ];
        check_int "under" 1 (Histogram.underflow h);
        check_int "over" 1 (Histogram.overflow h);
        check_int "invalid" 1 (Histogram.invalid h);
        let counts = Array.init (Histogram.bins h) (Histogram.bin_count h) in
        let lo, hi = Histogram.range h in
        let h' =
          Histogram.of_counts ~per_decade:4 ~lo ~hi ~counts
            ~underflow:(Histogram.underflow h) ~overflow:(Histogram.overflow h)
            ~invalid:(Histogram.invalid h) ~total:(Histogram.count h) ()
        in
        check_true "scheme survives" (Histogram.per_decade h' = Some 4);
        check_int "total" (Histogram.count h) (Histogram.count h');
        check_int "bins" (Histogram.bins h) (Histogram.bins h'));
    t "merge folds counters and rejects shape mismatches" (fun () ->
        let a = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
        let b = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
        List.iter (Histogram.add a) [ 0.1; 0.9 ];
        List.iter (Histogram.add b) [ 0.1; -1.; 2.; Float.nan ];
        Histogram.merge a b;
        check_int "bin 0 summed" 2 (Histogram.bin_count a 0);
        check_int "total summed" 6 (Histogram.count a);
        check_int "under" 1 (Histogram.underflow a);
        check_int "over" 1 (Histogram.overflow a);
        check_int "invalid" 1 (Histogram.invalid a);
        check_raises_invalid "bin mismatch" (fun () ->
            Histogram.merge a (Histogram.create ~lo:0. ~hi:1. ~bins:5));
        check_raises_invalid "scheme mismatch" (fun () ->
            let l = Histogram.log ~lo:1e-2 ~hi:1e2 ~per_decade:1 in
            Histogram.merge (Histogram.create ~lo:1e-2 ~hi:1e2 ~bins:4) l));
    qcheck ~name:"every added in-range value is counted"
      QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1.))
      (fun l ->
        let h = Histogram.create ~lo:0. ~hi:1. ~bins:7 in
        List.iter (Histogram.add h) l;
        let binned = List.init 7 (Histogram.bin_count h) in
        List.fold_left ( + ) 0 binned
        + Histogram.underflow h + Histogram.overflow h + Histogram.invalid h
        = List.length l);
  ]

let suite = stats_tests @ table_tests @ series_tests @ histogram_tests
