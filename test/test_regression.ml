(* Regression guards for the headline reproduction results.

   Runs are deterministic given their seeds, so these pin the measured
   quantities EXPERIMENTS.md reports into generous tolerance bands: a
   change that breaks the reproduction (skew regressing toward gamma,
   halving ratios drifting off 0.5, reintegration slowing down) fails here
   even if every bound technically still holds. *)

module Scenario = Csync_harness.Scenario
module Params = Csync_core.Params
open Helpers

let t name f = Alcotest.test_case name `Quick f

let suite =
  [
    t "E1 anchor: default run skew in [0.2, 0.6] x gamma" (fun () ->
        let params = Csync_harness.Defaults.base () in
        let r =
          Scenario.run
            (Scenario.with_standard_faults
               { (Scenario.default ~seed:42 params) with
                 Scenario.delay_kind = Scenario.Extreme_delay })
        in
        let ratio = r.Scenario.max_skew /. Params.gamma params in
        check_true (Printf.sprintf "ratio %.3f" ratio) (ratio >= 0.2 && ratio <= 0.6));
    t "E1 anchor: skew scales linearly with eps (within 25%)" (fun () ->
        let skew eps =
          let params = Csync_harness.Defaults.base ~eps () in
          (Scenario.run
             (Scenario.with_standard_faults
                { (Scenario.default ~seed:42 params) with
                  Scenario.delay_kind = Scenario.Extreme_delay }))
            .Scenario.max_skew
        in
        let ratio = skew 5e-4 /. skew 1e-4 in
        check_true (Printf.sprintf "scaling %.2f" ratio) (ratio > 3.75 && ratio < 6.25));
    t "E10 anchor: halving ratio 0.5 +- 0.02 over the first ten rounds" (fun () ->
        let params = Csync_harness.Defaults.base () in
        let cfg =
          Csync_harness.Runner_establishment.with_standard_faults
            (Csync_harness.Runner_establishment.default ~seed:42
               ~initial_spread:1000. params)
        in
        let r = Csync_harness.Runner_establishment.run cfg in
        let b = Array.of_list (List.map snd r.Csync_harness.Runner_establishment.b_series) in
        for i = 1 to 10 do
          let ratio = b.(i) /. b.(i - 1) in
          check_true (Printf.sprintf "round %d ratio %.4f" i ratio)
            (ratio >= 0.48 && ratio <= 0.52)
        done);
    t "E9 anchor: rejoin within three rounds of waking" (fun () ->
        let params = Csync_harness.Defaults.base () in
        let cfg = Csync_harness.Runner_reintegration.default ~seed:42 params in
        let r = Csync_harness.Runner_reintegration.run cfg in
        match r.Csync_harness.Runner_reintegration.join_round with
        | Some k ->
          check_true
            (Printf.sprintf "joined at %d, woke at %.1f" k
               cfg.Csync_harness.Runner_reintegration.wake_round)
            (float_of_int k
             <= cfg.Csync_harness.Runner_reintegration.wake_round +. 3.)
        | None -> Alcotest.fail "never joined");
    t "E11 anchor: sigma=0 wedges within 2 rounds, sigma=4eps is lossless"
      (fun () ->
        let params = Csync_harness.Defaults.base () in
        let run sigma =
          Scenario.run
            {
              (Scenario.default ~seed:42 params) with
              Scenario.stagger = sigma;
              collision = Some (3, params.Params.delta /. 2.);
              rounds = 12;
            }
        in
        let jammed = run 0. in
        let jammed_rounds =
          List.fold_left
            (fun acc (_, records) -> min acc (List.length records))
            max_int jammed.Scenario.histories
        in
        check_true "jammed" (jammed_rounds <= 2);
        let staggered = run (4. *. params.Params.eps) in
        check_int "no drops" 0 staggered.Scenario.dropped);
    t "E4 anchor: synchronized slope within 1 +- 2e-4" (fun () ->
        let params = Csync_harness.Defaults.base ~rho:1e-5 () in
        let r =
          Csync_harness.Runner_baseline.run
            ~algo:Csync_harness.Runner_baseline.Welch_lynch ~params ~seed:42
            ~faults:Csync_harness.Runner_baseline.Standard_faults ~rounds:40
        in
        let s = r.Csync_harness.Runner_baseline.slope_max in
        check_true (Printf.sprintf "slope %.6f" s) (s > 0.9998 && s < 1.0003));
  ]
