let () =
  Alcotest.run "csync"
    [
      ("multiset", Test_multiset.suite);
      ("sim", Test_sim.suite);
      ("clock", Test_clock.suite);
      ("net", Test_net.suite);
      ("process", Test_process.suite);
      ("params", Test_params.suite);
      ("core-algorithms", Test_core_algos.suite);
      ("establishment", Test_establishment.suite);
      ("adversary", Test_adversary.suite);
      ("baselines", Test_baselines.suite);
      ("metrics", Test_metrics.suite);
      ("obs", Test_obs.suite);
      ("harness", Test_harness.suite);
      ("scale", Test_scale.suite);
      ("topo", Test_topo.suite);
      ("extensions", Test_extensions.suite);
      ("chaos", Test_chaos.suite);
      ("runtime", Test_runtime.suite);
      ("check", Test_check.suite);
      ("bootstrap", Test_bootstrap.suite);
      ("properties", Test_properties.suite);
      ("integration", Test_integration.suite);
      ("regression", Test_regression.suite);
    ]
