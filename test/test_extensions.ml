(* Tests for the extension modules: adjustment smoothing, approximate
   agreement, and the live-runtime clock arithmetic (plus one short real
   UDP round-trip). *)

module Smoothing = Csync_core.Smoothing
module Approx = Csync_core.Approx_agreement
module Params = Csync_core.Params
module Wall_clock = Csync_runtime.Wall_clock
open Helpers

let t name f = Alcotest.test_case name `Quick f

let p = params ()

let smoothing_tests =
  [
    t "create validates" (fun () ->
        check_raises_invalid "interval" (fun () ->
            ignore (Smoothing.create ~slew_interval:0.)));
    t "no jumps: smoothed = raw" (fun () ->
        let s = Smoothing.create ~slew_interval:1. in
        check_float "residual" 0. (Smoothing.residual s ~phys:5.);
        check_float "time" 7.5 (Smoothing.time s ~phys:5. ~corr:2.5);
        check_true "settled" (Smoothing.is_settled s ~phys:5.));
    t "a jump slews linearly and settles" (fun () ->
        let s = Smoothing.create ~slew_interval:1. in
        let s = Smoothing.observe s ~at_phys:10. ~adj:(-0.4) in
        (* Immediately after: whole adjustment unsurfaced. *)
        check_float_tol 1e-12 "at jump" (-0.4) (Smoothing.residual s ~phys:10.);
        check_float_tol 1e-12 "halfway" (-0.2) (Smoothing.residual s ~phys:10.5);
        check_float "done" 0. (Smoothing.residual s ~phys:11.);
        check_true "settled" (Smoothing.is_settled s ~phys:11.);
        (* CORR went 0 -> -0.4 at the jump; smoothed time = phys + corr -
           residual = 10 - 0.4 + 0.4 = 10: continuous with the pre-jump
           value. *)
        check_float_tol 1e-12 "continuous" 10.
          (Smoothing.time s ~phys:10. ~corr:(-0.4)));
    t "negative adjustment never makes time retreat" (fun () ->
        let s = Smoothing.create ~slew_interval:1. in
        let s = Smoothing.observe s ~at_phys:10. ~adj:(-0.4) in
        let corr = -0.4 in
        let prev = ref neg_infinity in
        for i = 0 to 200 do
          let phys = 9.9 +. (float_of_int i /. 100.) in
          let now = Smoothing.time s ~phys ~corr in
          check_true "monotone" (now >= !prev);
          prev := now
        done);
    t "raw time jumps backwards in the same situation" (fun () ->
        (* Sanity check of the premise: without smoothing, corr going from
           0 to -0.4 at phys=10 sets the clock back. *)
        let before = 10. +. 0. and after = 10. +. (-0.4) in
        check_true "raw retreats" (after < before));
    t "overlapping jumps accumulate" (fun () ->
        let s = Smoothing.create ~slew_interval:1. in
        let s = Smoothing.observe s ~at_phys:10. ~adj:(-0.2) in
        let s = Smoothing.observe s ~at_phys:10.5 ~adj:(-0.2) in
        (* At 10.75: first jump 3/4 done (residual -0.05), second 1/4 done
           (residual -0.15). *)
        check_float_tol 1e-12 "sum" (-0.2) (Smoothing.residual s ~phys:10.75));
    t "out-of-order observation rejected" (fun () ->
        let s = Smoothing.observe (Smoothing.create ~slew_interval:1.) ~at_phys:10. ~adj:0.1 in
        check_raises_invalid "order" (fun () ->
            ignore (Smoothing.observe s ~at_phys:9. ~adj:0.1)));
    t "of_params guarantees monotonicity per Lemma 7" (fun () ->
        let s = Smoothing.of_params p in
        let worst = -.Params.adjustment_bound p in
        check_true "slope positive" (Smoothing.monotone_slope_bound s ~adj:worst > 0.));
    t "smoothed skew stays within gamma + adjustment bound" (fun () ->
        (* Integration: apply smoothing to every process of a real run and
           compare smoothed local times at the sample instants.  Smoothing
           hides at most one in-flight adjustment per process. *)
        let scenario =
          Csync_harness.Scenario.with_standard_faults
            { (Csync_harness.Scenario.default ~seed:9 p) with
              Csync_harness.Scenario.rounds = 10 }
        in
        let r = Csync_harness.Scenario.run scenario in
        let bound = Params.gamma p +. Params.adjustment_bound p in
        (* Evaluate smoothed local time for each process at one late real
           instant, using the recorded histories: smoothed = raw - residual
           where raw skew <= gamma already holds. *)
        let residuals =
          List.map
            (fun (_, records) ->
              let s = Smoothing.observe_history (Smoothing.of_params p) records in
              let last = List.nth records (List.length records - 1) in
              Smoothing.residual s
                ~phys:(last.Csync_core.Maintenance.update_phys +. 0.1))
            r.Csync_harness.Scenario.histories
        in
        let spread =
          List.fold_left Float.max (List.hd residuals) residuals
          -. List.fold_left Float.min (List.hd residuals) residuals
        in
        check_true "residual spread within adjustment bound"
          (spread <= Params.adjustment_bound p);
        check_true "combined bound sane"
          (r.Csync_harness.Scenario.max_skew +. spread <= bound));
    t "observe_history replays a maintenance run" (fun () ->
        let scenario =
          { (Csync_harness.Scenario.default ~seed:3 p) with Csync_harness.Scenario.rounds = 6 }
        in
        let r = Csync_harness.Scenario.run scenario in
        let _, records = List.hd r.Csync_harness.Scenario.histories in
        let s = Smoothing.observe_history (Smoothing.of_params p) records in
        let last = List.nth records (List.length records - 1) in
        (* One slew interval after the last update everything is settled. *)
        check_true "settles"
          (Smoothing.is_settled s
             ~phys:(last.Csync_core.Maintenance.update_phys +. (1.1 *. p.Params.big_p))));
  ]

let approx_tests =
  [
    t "validates inputs" (fun () ->
        check_raises_invalid "3f+1" (fun () ->
            ignore (Approx.run ~n:6 ~f:2 ~rounds:1 ~initial:[| 1.; 2.; 3.; 4. |] ()));
        check_raises_invalid "length" (fun () ->
            ignore (Approx.run ~n:7 ~f:2 ~rounds:1 ~initial:[| 1. |] ())));
    t "fault-free convergence to the midpoint" (fun () ->
        let r = Approx.run ~n:4 ~f:1 ~rounds:1 ~initial:[| 0.; 10.; 4. |] () in
        (* Each receiver: values {0,10,4, own}; reduce f=1 then midpoint. *)
        check_true "diameter shrinks" (List.hd r.diameters < 10.));
    t "halving guarantee across rounds" (fun () ->
        let r =
          Approx.run ~n:7 ~f:2 ~rounds:10 ~initial:[| 0.; 1.; 2.; 3.; 100. |] ()
        in
        let rec check_halves diam = function
          | [] -> ()
          | d :: rest ->
            check_true "at most half" (d <= (diam /. 2.) +. 1e-9);
            check_halves d rest
        in
        check_halves 100. r.diameters;
        check_true "converged" (List.nth r.diameters 9 < 0.2));
    t "validity: values stay in the initial nonfaulty range" (fun () ->
        let adversary ~round:_ ~faulty:_ ~target:_ = Some 1e9 in
        let r =
          Approx.run ~n:7 ~f:2 ~rounds:5 ~adversary ~initial:[| 0.; 1.; 2.; 3.; 4. |] ()
        in
        Array.iter
          (fun v -> check_true "in range" (v >= 0. && v <= 4.))
          r.final);
    t "two-faced adversary cannot prevent halving" (fun () ->
        (* Lies placed at the honest extremes - the Lemma 24 tight case. *)
        let r_holder = ref [| 0.; 4.; 8.; 12.; 16. |] in
        let adversary ~round:_ ~faulty:_ ~target =
          let values = !r_holder in
          let lo = Array.fold_left Float.min values.(0) values in
          let hi = Array.fold_left Float.max values.(0) values in
          Some (if target < 3 then hi else lo)
        in
        let r = Approx.run ~n:7 ~f:2 ~rounds:8 ~adversary ~initial:!r_holder () in
        (* Diameter still halves (the multiset lemma bound). *)
        let rec go diam = function
          | [] -> ()
          | d :: rest ->
            check_true "<= diam/2" (d <= (diam /. 2.) +. 1e-9);
            go d rest
        in
        go 16. r.diameters);
    t "omissions count as the recipient's own value" (fun () ->
        let r = Approx.run ~n:4 ~f:1 ~rounds:3 ~initial:[| 1.; 1.; 1. |] () in
        Array.iter (fun v -> check_float "fixed point" 1. v) r.final);
    t "rounds_to_converge" (fun () ->
        check_int "1024 -> 1 is 10 halvings" 10
          (Approx.rounds_to_converge ~diam0:1024. ~target:1.);
        check_int "already there" 0 (Approx.rounds_to_converge ~diam0:1. ~target:2.);
        check_raises_invalid "bad input" (fun () ->
            ignore (Approx.rounds_to_converge ~diam0:0. ~target:1.)));
  ]

let runtime_tests =
  [
    t "wall clock arithmetic" (fun () ->
        let c = Wall_clock.create ~epoch:100. ~offset:5. ~rate:2. () in
        check_float "of_wall" 25. (Wall_clock.of_wall c 110.);
        check_float "wall_of inverts" 110. (Wall_clock.wall_of c 25.);
        check_float "rate" 2. (Wall_clock.rate c);
        check_float "offset" 5. (Wall_clock.offset c);
        check_raises_invalid "rate" (fun () ->
            ignore (Wall_clock.create ~offset:0. ~rate:0. ())));
    t "now advances" (fun () ->
        let c = Wall_clock.create ~offset:0. ~rate:1. () in
        let a = Wall_clock.now c in
        let b = Wall_clock.now c in
        check_true "monotone-ish" (b >= a));
    Alcotest.test_case "live UDP nodes synchronize (2s, loopback)" `Slow
      (fun () ->
        let params =
          Csync_core.Params.auto ~n:4 ~f:1 ~rho:1e-4 ~delta:0.025 ~eps:0.0249
            ~big_p:0.45 ()
          |> Result.get_ok
        in
        let report =
          Csync_runtime.Live.run_maintenance ~base_port:17_530 ~params
            ~duration:2.0 ()
        in
        check_true "rounds happened"
          (List.for_all
             (fun n -> n.Csync_runtime.Live.rounds >= 2)
             report.Csync_runtime.Live.nodes);
        check_true "skew reduced"
          (report.Csync_runtime.Live.final_skew
           < report.Csync_runtime.Live.initial_skew /. 5.);
        check_true "within gamma"
          (report.Csync_runtime.Live.final_skew <= Csync_core.Params.gamma params));
  ]

let suite = smoothing_tests @ approx_tests @ runtime_tests
