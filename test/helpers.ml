(* Shared test utilities. *)

let check_float = Alcotest.(check (float 1e-9))

let check_float_tol tol = Alcotest.(check (float tol))

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_true msg b = Alcotest.(check bool) msg true b

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let qcheck ?(count = 200) ~name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Standard small parameter set used across algorithm tests. *)
let params () =
  Csync_core.Params.make_exn ~n:7 ~f:2 ~rho:1e-6 ~delta:1e-3 ~eps:1e-4
    ~beta:4.5e-4 ~big_p:0.5 ()

(* Substring search (no external deps). *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else begin
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  end
