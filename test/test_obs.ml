(* Tests for the telemetry subsystem: JSON round-trips, registry
   semantics, the trace/report pipeline, and the cardinal invariant -
   telemetry on/off and any worker count leave experiment output
   byte-identical. *)

module Obs = Csync_obs.Registry
module Json = Csync_obs.Json
module Manifest = Csync_obs.Manifest
module Report = Csync_obs.Report
module Mon = Csync_obs.Monitor
module Diff = Csync_obs.Diff
module Record = Csync_obs.Record
open Helpers

let t name f = Alcotest.test_case name `Quick f

(* Every test that installs a registry must clear it, or a failure would
   leak telemetry into unrelated suites. *)
let with_installed reg f =
  Obs.install reg;
  Fun.protect ~finally:Obs.clear_installed f

(* Same discipline for the ambient monitor. *)
let with_monitor mon f =
  Mon.install mon;
  Fun.protect ~finally:Mon.clear_installed f

let json_tests =
  [
    t "writer emits canonical scalars" (fun () ->
        Alcotest.(check string)
          "obj" {|{"a":1,"b":true,"c":"x\n","d":null}|}
          (Json.to_string
             (Json.Obj
                [
                  ("a", Json.num_of_int 1);
                  ("b", Json.Bool true);
                  ("c", Json.Str "x\n");
                  ("d", Json.Null);
                ]));
        Alcotest.(check string)
          "ints have no fraction" "[3,-2,0]"
          (Json.to_string (Json.Arr [ Json.Num 3.; Json.Num (-2.); Json.Num 0. ]));
        Alcotest.(check string) "nan encodes as null" "null"
          (Json.to_string (Json.Num Float.nan)));
    t "parser round-trips the writer" (fun () ->
        let v =
          Json.Obj
            [
              ("name", Json.Str "net.delay.0->1");
              ("xs", Json.Arr [ Json.Num 0.1; Json.Num 1e-9; Json.Num 12345.25 ]);
              ("quote", Json.Str "a\"b\\c\td");
              ("flags", Json.Arr [ Json.Bool false; Json.Null ]);
            ]
        in
        match Json.of_string (Json.to_string v) with
        | Error e -> Alcotest.failf "parse failed: %s" e
        | Ok v' -> check_true "round-trip" (v = v'));
    t "floats survive exactly" (fun () ->
        let f = 0.1 +. 0.2 in
        match Json.of_string (Json.to_string (Json.Num f)) with
        | Ok (Json.Num f') -> check_true "bit-exact" (Float.equal f f')
        | _ -> Alcotest.fail "expected a number");
    t "parser rejects garbage" (fun () ->
        check_true "trailing" (Result.is_error (Json.of_string "{} x"));
        check_true "unterminated" (Result.is_error (Json.of_string "[1,"));
        check_true "bad literal" (Result.is_error (Json.of_string "troo")));
  ]

let registry_tests =
  [
    t "disabled registry handles are no-ops" (fun () ->
        let r = Obs.none in
        let c = Obs.counter r "c" in
        Obs.Counter.incr c;
        check_int "counter" 0 (Obs.Counter.value c);
        let g = Obs.gauge r "g" in
        check_bool "inactive" false (Obs.Gauge.active g);
        Obs.Gauge.set g 5.;
        check_true "no value" (Obs.Gauge.value g = None);
        let s = Obs.series r "s" in
        Obs.Series.push s 1. 2.;
        check_true "no points" (Obs.Series.points s = []);
        Obs.event r "e" [];
        check_int "no records" 0 (List.length (Obs.dump r)));
    t "counters and gauges accumulate" (fun () ->
        let r = Obs.create () in
        let c = Obs.counter r "c" in
        Obs.Counter.incr c;
        Obs.Counter.add c 4;
        check_int "counter" 5 (Obs.Counter.value c);
        (* Interning: same name, same cell. *)
        Obs.Counter.incr (Obs.counter r "c");
        check_int "interned" 6 (Obs.Counter.value c);
        let g = Obs.gauge r "g" in
        Obs.Gauge.observe_max g 2.;
        Obs.Gauge.observe_max g 7.;
        Obs.Gauge.observe_max g 3.;
        check_true "high water" (Obs.Gauge.value g = Some 7.));
    t "series keeps insertion order" (fun () ->
        let r = Obs.create () in
        let s = Obs.series r "s" in
        for i = 1 to 100 do
          Obs.Series.push s (float_of_int i) (float_of_int (i * i))
        done;
        let pts = Obs.Series.points s in
        check_int "length" 100 (List.length pts);
        check_true "first" (List.hd pts = (1., 1.));
        check_true "last" (List.nth pts 99 = (100., 10000.)));
    t "span records durations" (fun () ->
        let r = Obs.create () in
        let p = Obs.span r "p" in
        Obs.Span.record p 0.5;
        let v = Obs.Span.time p (fun () -> 42) in
        check_int "result" 42 v;
        check_int "count" 2 (Obs.Span.count p));
    t "label prefixes minted names" (fun () ->
        let r = Obs.create () in
        Obs.set_label r "cell A";
        Obs.Counter.incr (Obs.counter r "x");
        Obs.set_label r "";
        Obs.Counter.incr (Obs.counter r "x");
        let names =
          List.filter_map
            (fun j -> Option.bind (Json.member "name" j) Json.to_str)
            (Obs.dump r)
        in
        check_true "labeled" (List.mem "cell A/x" names);
        check_true "unlabeled" (List.mem "x" names));
    t "dump is sorted and parseable" (fun () ->
        let r = Obs.create () in
        Obs.Counter.incr (Obs.counter r "b");
        Obs.Counter.incr (Obs.counter r "a");
        let h = Obs.hist r ~lo:0. ~hi:1. ~bins:4 "h" in
        Obs.Hist.add h 0.5;
        Obs.Hist.add h Float.nan;
        Obs.event r "ev" [ ("k", Json.Str "v") ];
        let dump = Obs.dump r in
        let lines = List.map Json.to_string dump in
        List.iter
          (fun line ->
            match Report.check_line line with
            | Ok () -> ()
            | Error e -> Alcotest.failf "bad record %s: %s" line e)
          lines;
        let counter_names =
          List.filter_map
            (fun j ->
              match Json.member "record" j with
              | Some (Json.Str "counter") ->
                Option.bind (Json.member "name" j) Json.to_str
              | _ -> None)
            dump
        in
        check_true "sorted" (counter_names = [ "a"; "b" ]));
    t "event cap drops excess and reports it" (fun () ->
        let r = Obs.create () in
        for _ = 1 to 65537 do
          Obs.event r "e" []
        done;
        let dump = Obs.dump r in
        let dropped =
          List.exists
            (fun j ->
              Json.member "name" j = Some (Json.Str "obs.events_dropped"))
            dump
        in
        check_true "dropped counter present" dropped);
  ]

let manifest_tests =
  [
    t "manifest shape" (fun () ->
        let m = Manifest.make ~target:"E1" ~seed:7 ~jobs:2 ~quick:true () in
        check_true "record" (Json.member "record" m = Some (Json.Str "manifest"));
        check_true "schema"
          (Json.member "schema" m = Some (Json.Str Manifest.schema));
        check_true "seed"
          (Option.bind (Json.member "seed" m) Json.to_int = Some 7);
        match Report.check_line (Json.to_string m) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "manifest rejected: %s" e);
  ]

let report_tests =
  [
    t "trace parses and renders every section" (fun () ->
        let r = Obs.create () in
        let run () =
          let params = params () in
          let scenario = Csync_harness.Scenario.default ~seed:42 params in
          Csync_harness.Scenario.run
            { scenario with Csync_harness.Scenario.rounds = 6 }
        in
        let _ = with_installed r run in
        let lines =
          Json.to_string (Manifest.make ~target:"test" ~seed:42 ~jobs:1 ~quick:true ())
          :: List.map Json.to_string (Obs.dump r)
        in
        match Report.of_lines lines with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok parsed ->
          let out = Format.asprintf "%a" (Report.render ?focus:None) parsed in
          check_true "manifest section" (contains out "== Manifest ==");
          check_true "skew timeline" (contains out "run.skew");
          check_true "adj table" (contains out "ADJ per round");
          check_true "delay histogram" (contains out "net.delay");
          check_true "sim counter" (contains out "sim.events"));
    t "malformed lines are rejected with a line number" (fun () ->
        match Report.of_lines [ "{\"record\":\"manifest\"}"; "{oops" ] with
        | Ok _ -> Alcotest.fail "expected parse error"
        | Error e -> check_true "names line 2" (contains e "line 2"));
    t "empty and manifest-only traces render" (fun () ->
        (match Report.of_lines [] with
        | Error e -> Alcotest.failf "empty trace: %s" e
        | Ok t ->
          let out = Format.asprintf "%a" (Report.render ?focus:None) t in
          check_true "notes the missing manifest"
            (contains out "no manifest record"));
        let m =
          Json.to_string (Manifest.make ~target:"E1" ~seed:1 ~jobs:1 ~quick:true ())
        in
        match Report.of_lines [ m ] with
        | Error e -> Alcotest.failf "manifest-only trace: %s" e
        | Ok t ->
          let out = Format.asprintf "%a" (Report.render ?focus:None) t in
          check_true "manifest section" (contains out "== Manifest ==");
          check_true "target" (contains out "E1"));
  ]

(* Forward compatibility: the reader must survive traces from newer
   writers (unknown record kinds, unknown manifest fields) with warnings,
   while staying a clean one-line error on genuinely malformed input. *)
let forward_compat_tests =
  [
    t "unknown record kinds are skipped with a warning" (fun () ->
        let lines =
          [
            {|{"record":"manifest","schema":"csync-trace/1","target":"E1"}|};
            {|{"record":"flux_capacitor","name":"x","value":88}|};
            {|{"record":"counter","name":"c","value":3}|};
          ]
        in
        match Report.of_lines lines with
        | Error e -> Alcotest.failf "reader should not fail: %s" e
        | Ok t ->
          check_int "counter still read" 1 (List.length (Report.counters t));
          check_int "one warning" 1 (List.length (Report.warnings t));
          check_true "warning names the kind"
            (contains (List.hd (Report.warnings t)) "flux_capacitor"));
    t "unknown manifest fields are skipped with a warning" (fun () ->
        let lines =
          [ {|{"record":"manifest","schema":"csync-trace/1","hovercraft":true}|} ]
        in
        match Report.of_lines lines with
        | Error e -> Alcotest.failf "reader should not fail: %s" e
        | Ok t ->
          check_int "one warning" 1 (List.length (Report.warnings t));
          check_true "warning names the field"
            (contains (List.hd (Report.warnings t)) "hovercraft"));
    t "the writer-side validator stays strict on unknown kinds" (fun () ->
        match Report.check_line {|{"record":"flux_capacitor"}|} with
        | Ok () -> Alcotest.fail "check_line must reject unknown kinds"
        | Error e -> check_true "names the kind" (contains e "flux_capacitor"));
    t "truncated and shape-broken lines give one-line errors" (fun () ->
        (match Report.of_lines [ {|{"record":"counter","na|} ] with
        | Ok _ -> Alcotest.fail "expected error"
        | Error e -> check_true "names line 1" (contains e "line 1"));
        match
          Report.of_lines
            [ {|{"record":"series","name":"s","xs":[1],"ys":[1,2]}|} ]
        with
        | Ok _ -> Alcotest.fail "expected error"
        | Error e -> check_true "mismatch named" (contains e "mismatch"));
  ]

(* Online theorem monitors: handle semantics of each of the four checks,
   the provenance ring, and end-to-end violation extraction from a
   chaos run. *)
let monitor_tests =
  let find_first mon check =
    List.find_map
      (fun (c, _, _, first) -> if c = check then first else None)
      (Mon.results mon)
  in
  [
    t "disabled monitor handles are permanent no-ops" (fun () ->
        let m = Mon.none in
        check_bool "disabled" false (Mon.enabled m);
        Mon.Agreement.check
          (Mon.Agreement.handle m ~gamma:1e-9 ~from_time:0.)
          ~time:1. ~skew:99.;
        Mon.Halving.observe
          (Mon.Halving.handle m ~recurrence:(fun b -> b /. 2.))
          ~round:1 ~spread:99.;
        let adj_h = Mon.Adjustment.handle m ~bound:1e-9 ~pid:0 in
        check_bool "inactive" false (Mon.Adjustment.active adj_h);
        Mon.Adjustment.check adj_h ~round:1 ~time:1. ~adj:99. ~slots:[||];
        check_true "mint yields null"
          (Mon.Prov.mint m ~src:0 ~dst:1 ~sent:0. ~delay:1e-3 = Mon.Prov.null);
        check_true "null never resolves" (Mon.Prov.find m Mon.Prov.null = None);
        check_int "no evaluations" 0 (Mon.checks_performed m);
        check_int "no records" 0 (List.length (Mon.dump m)));
    t "agreement records the first violation past the warmup" (fun () ->
        let m = Mon.create () in
        let h = Mon.Agreement.handle m ~gamma:1.0 ~from_time:10. in
        Mon.Agreement.check h ~time:5. ~skew:99.;
        (* before warmup: no claim *)
        Mon.Agreement.check h ~time:10. ~skew:0.5;
        Mon.Agreement.check h ~time:11. ~skew:2.0;
        Mon.Agreement.check h ~time:12. ~skew:3.0;
        check_int "evaluations" 3 (Mon.checks_performed m);
        check_int "violations" 2 (Mon.violations_total m);
        match Mon.first_violation m with
        | None -> Alcotest.fail "expected a violation"
        | Some v ->
          check_float "first one wins" 11. v.Mon.time;
          check_float "measured" 2.0 v.Mon.measured;
          check_float "bound" 1.0 v.Mon.bound);
    t "validity checks both sides of the envelope" (fun () ->
        let m = Mon.create () in
        let h =
          Mon.Validity.handle m ~alpha1:0.9 ~alpha2:1.1 ~alpha3:0.01 ~t0:0.
            ~tmin0:0. ~tmax0:0.
        in
        Mon.Validity.check h ~time:1. ~min_local:0.95 ~max_local:1.05;
        check_int "in envelope" 0 (Mon.violations_total m);
        Mon.Validity.check h ~time:1. ~min_local:0.95 ~max_local:2.0;
        check_int "upper breach" 1 (Mon.violations_total m);
        Mon.Validity.check h ~time:1. ~min_local:0.5 ~max_local:1.05;
        check_int "lower breach" 2 (Mon.violations_total m);
        match find_first m Mon.Validity with
        | Some v -> check_float "first is the upper breach" 2.0 v.Mon.measured
        | None -> Alcotest.fail "expected a validity violation");
    t "halving checks consecutive rounds and resets on gaps" (fun () ->
        let m = Mon.create () in
        let h = Mon.Halving.handle m ~recurrence:(fun b -> b /. 2.) in
        Mon.Halving.observe h ~round:0 ~spread:1.0;
        (* chain start *)
        Mon.Halving.observe h ~round:1 ~spread:0.4;
        (* 0.4 <= 0.5: ok *)
        Mon.Halving.observe h ~round:2 ~spread:0.3;
        (* 0.3 > 0.2: violation *)
        Mon.Halving.observe h ~round:7 ~spread:10.0;
        (* gap: chain resets, no check *)
        check_int "two pairs evaluated" 2 (Mon.checks_performed m);
        check_int "one violation" 1 (Mon.violations_total m);
        match find_first m Mon.Halving with
        | Some v ->
          check_true "round recorded" (v.Mon.round = Some 2);
          check_float "bound is the recurrence image" 0.2 v.Mon.bound
        | None -> Alcotest.fail "expected a halving violation");
    t "adjustment violation resolves slot provenance, fresh first" (fun () ->
        let m = Mon.create () in
        Mon.Prov.stage_fault m "drop";
        let p1 = Mon.Prov.mint m ~src:1 ~dst:0 ~sent:0.1 ~delay:2e-3 in
        Mon.Prov.clear_staged m;
        let p2 = Mon.Prov.mint m ~src:2 ~dst:0 ~sent:0.2 ~delay:1e-3 in
        (match Mon.Prov.find m p1 with
        | Some e -> check_true "staged fault attached" (e.Mon.Prov.faults = [ "drop" ])
        | None -> Alcotest.fail "p1 must resolve");
        (match Mon.Prov.find m p2 with
        | Some e -> check_true "cleared after clear_staged" (e.Mon.Prov.faults = [])
        | None -> Alcotest.fail "p2 must resolve");
        let h = Mon.Adjustment.handle m ~bound:1e-4 ~pid:0 in
        check_bool "active" true (Mon.Adjustment.active h);
        let slots : Mon.slot array =
          [|
            { Mon.pid = 2; prov = p2; fresh = false };
            { Mon.pid = 1; prov = p1; fresh = true };
          |]
        in
        Mon.Adjustment.check h ~round:3 ~time:1.5 ~adj:(-2e-4) ~slots;
        match find_first m Mon.Adjustment with
        | None -> Alcotest.fail "expected an adjustment violation"
        | Some v ->
          check_float "abs adj" 2e-4 v.Mon.measured;
          check_true "pid" (v.Mon.pid = Some 0);
          check_int "both slots resolved" 2 (List.length v.Mon.provenance);
          (match v.Mon.provenance with
          | (e1, fresh1) :: (e2, fresh2) :: [] ->
            check_bool "fresh slot first" true fresh1;
            check_int "fresh src" 1 e1.Mon.Prov.src;
            check_bool "stale second" false fresh2;
            check_int "stale src" 2 e2.Mon.Prov.src
          | _ -> Alcotest.fail "expected two provenance entries"));
    t "tightened bounds force violations in a clean scenario" (fun () ->
        let m = Mon.create ~tighten:1e-6 () in
        with_monitor m (fun () ->
            let scenario = Csync_harness.Scenario.default ~seed:42 (params ()) in
            ignore
              (Csync_harness.Scenario.run
                 { scenario with Csync_harness.Scenario.rounds = 6 }));
        check_true "violations recorded" (Mon.violations_total m > 0);
        check_true "a first violation exists" (Mon.first_violation m <> None));
    t "stabilization monitor: tight allowance fires, generous stays silent"
      (fun () ->
        (* Tight: 2 rounds x 0.5 s = 1 s allowance.  A corruption at t=10
           must be back in gamma by t=11; an out-of-gamma sample past the
           deadline is the violation, and its provenance names the
           corrupting fault. *)
        let m = Mon.create () in
        let h = Mon.Stabilization.handle m ~rounds:2 ~big_p:0.5 in
        check_bool "active" true (Mon.Stabilization.active h);
        Mon.Stabilization.corrupted h ~pid:3 ~time:10.;
        Mon.Stabilization.observe h ~pid:3 ~time:10.5 ~within_gamma:false;
        (* still inside the allowance: no claim yet *)
        check_int "no early violation" 0 (Mon.violations_total m);
        Mon.Stabilization.observe h ~pid:3 ~time:11.2 ~within_gamma:false;
        Mon.Stabilization.observe h ~pid:3 ~time:11.4 ~within_gamma:false;
        (* recorded once per obligation, on the first breach *)
        check_int "one violation" 1 (Mon.violations_total m);
        Mon.Stabilization.finish h ~time:12.;
        (match Mon.first_violation m with
        | None -> Alcotest.fail "expected a stabilization violation"
        | Some v ->
          check_true "names the pid" (v.Mon.pid = Some 3);
          check_float "measured: seconds since the corruption" 1.2
            v.Mon.measured;
          check_float "bound: the allowance" 1.0 v.Mon.bound;
          match v.Mon.provenance with
          | [ (e, _) ] ->
            check_true "provenance names the corruption"
              (e.Mon.Prov.faults = [ "state-corrupt" ])
          | _ -> Alcotest.fail "expected one minted provenance entry");
        (* Generous: 20 rounds = 10 s.  The same trajectory recovers well
           before the deadline, so the covered obligation passes. *)
        let m2 = Mon.create () in
        let h2 = Mon.Stabilization.handle m2 ~rounds:20 ~big_p:0.5 in
        Mon.Stabilization.corrupted h2 ~pid:3 ~time:10.;
        Mon.Stabilization.observe h2 ~pid:3 ~time:11.2 ~within_gamma:false;
        Mon.Stabilization.observe h2 ~pid:3 ~time:14. ~within_gamma:true;
        Mon.Stabilization.finish h2 ~time:30.;
        check_int "silent" 0 (Mon.violations_total m2);
        check_int "obligation resolved as a pass" 1 (Mon.checks_performed m2));
    t "eventual obligations anchor on the last corruption" (fun () ->
        let m = Mon.create () in
        let h = Mon.Stabilization.handle m ~rounds:2 ~big_p:0.5 in
        Mon.Stabilization.corrupted h ~pid:1 ~time:10.;
        (* A second hit at 10.8 replaces the obligation: deadline moves
           from 11 to 11.8, so a bad sample at 11.2 is no violation. *)
        Mon.Stabilization.corrupted h ~pid:1 ~time:10.8;
        Mon.Stabilization.observe h ~pid:1 ~time:11.2 ~within_gamma:false;
        check_int "re-anchored deadline not yet breached" 0
          (Mon.violations_total m);
        Mon.Stabilization.observe h ~pid:1 ~time:11.9 ~within_gamma:false;
        check_int "breached after the moved deadline" 1
          (Mon.violations_total m);
        (* An obligation whose deadline the run never covers is
           inconclusive: neither a violation nor a pass. *)
        let m2 = Mon.create () in
        let h2 = Mon.Stabilization.handle m2 ~rounds:2 ~big_p:0.5 in
        Mon.Stabilization.corrupted h2 ~pid:1 ~time:10.;
        Mon.Stabilization.finish h2 ~time:10.5;
        check_int "inconclusive: no claim" 0 (Mon.checks_performed m2));
    t "reconvergence monitor: gap bound enforced after the allowance"
      (fun () ->
        let m = Mon.create () in
        let h =
          Mon.Reconvergence.handle m ~rounds:2 ~big_p:0.5 ~bound:0.1
        in
        Mon.Reconvergence.corrupted h ~pid:5 ~time:0.;
        Mon.Reconvergence.observe h ~pid:5 ~time:0.5 ~gap:7.;
        (* inside the allowance *)
        check_int "no early violation" 0 (Mon.violations_total m);
        Mon.Reconvergence.observe h ~pid:5 ~time:1.2 ~gap:0.5;
        check_int "stale gap past the deadline" 1 (Mon.violations_total m);
        (match Mon.first_violation m with
        | Some v ->
          check_float "measured: the gap" 0.5 v.Mon.measured;
          check_float "bound" 0.1 v.Mon.bound
        | None -> Alcotest.fail "expected a reconvergence violation");
        (* A converged trajectory stays silent. *)
        let m2 = Mon.create () in
        let h2 =
          Mon.Reconvergence.handle m2 ~rounds:2 ~big_p:0.5 ~bound:0.1
        in
        Mon.Reconvergence.corrupted h2 ~pid:5 ~time:0.;
        Mon.Reconvergence.observe h2 ~pid:5 ~time:1.2 ~gap:0.05;
        Mon.Reconvergence.finish h2 ~time:2.;
        check_int "silent" 0 (Mon.violations_total m2);
        check_int "pass recorded" 1 (Mon.checks_performed m2));
    t "dump round-trips through the report reader" (fun () ->
        let m = Mon.create ~tighten:1e-6 () in
        with_monitor m (fun () ->
            let scenario = Csync_harness.Scenario.default ~seed:42 (params ()) in
            ignore
              (Csync_harness.Scenario.run
                 { scenario with Csync_harness.Scenario.rounds = 6 }));
        let lines = List.map Json.to_string (Mon.dump m) in
        check_int "one record per check" 7 (List.length lines);
        List.iter
          (fun line ->
            match Report.check_line line with
            | Ok () -> ()
            | Error e -> Alcotest.failf "bad monitor record %s: %s" line e)
          lines;
        match Report.of_lines lines with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok parsed ->
          check_int "seven monitors" 7 (List.length (Report.monitors parsed));
          let out = Format.asprintf "%a" (Report.render ?focus:None) parsed in
          check_true "monitors section" (contains out "== Monitors ==");
          check_true "first violation rendered"
            (contains out "first violation"));
  ]

(* End-to-end causal provenance: a chaos run whose network faults are
   active from t=0 on every link, monitored with tightened bounds, must
   yield an adjustment violation whose provenance names the injected
   faults behind the offending ARR slots (the observability acceptance
   criterion). *)
let provenance_tests =
  [
    t "chaos breach names the injected faults behind the ADJ" (fun () ->
        let params = params () in
        let n = params.Csync_core.Params.n in
        let over =
          Csync_chaos.Plan.interval ~from_time:0. ~until_time:1e6
        in
        let plan =
          List.concat_map
            (fun src ->
              List.filter_map
                (fun dst ->
                  if src = dst then None
                  else
                    Some
                      (Csync_chaos.Plan.Link
                         {
                           src;
                           dst;
                           fault = Csync_chaos.Plan.Reorder 2e-4;
                           over;
                         }))
                (List.init n Fun.id))
            (List.init n Fun.id)
        in
        let m = Mon.create ~tighten:1e-4 () in
        let result =
          with_monitor m (fun () ->
              Csync_harness.Runner_chaos.run
                (Csync_harness.Runner_chaos.make ~seed:7 ~rounds:16 ~params plan))
        in
        check_true "faults were injected"
          (Csync_chaos.Injector.total
             result.Csync_harness.Runner_chaos.stats
          > 0);
        let adj_first =
          List.find_map
            (fun (c, _, _, first) -> if c = Mon.Adjustment then first else None)
            (Mon.results m)
        in
        match adj_first with
        | None -> Alcotest.fail "expected an adjustment violation"
        | Some v ->
          check_true "provenance resolved" (v.Mon.provenance <> []);
          check_true "an injected fault is named"
            (List.exists
               (fun (e, _) -> List.mem "reorder" e.Mon.Prov.faults)
               v.Mon.provenance));
  ]

(* Cross-run trace diffing (csync report --diff).  Captures are built
   in memory - manifest line + registry dump + monitor dump, exactly
   what [csync trace] writes - and parsed back through the reader. *)
let diff_tests =
  let capture ?(seed = 42) ?(tighten = 1.0) () =
    let reg = Obs.create () and m = Mon.create ~tighten () in
    Obs.install reg;
    Mon.install m;
    Fun.protect
      ~finally:(fun () ->
        Obs.clear_installed ();
        Mon.clear_installed ())
      (fun () ->
        let scenario = Csync_harness.Scenario.default ~seed (params ()) in
        ignore
          (Csync_harness.Scenario.run
             { scenario with Csync_harness.Scenario.rounds = 6 }));
    let lines =
      List.map Json.to_string
        (Manifest.make ~target:"scenario" ~seed ~jobs:1 ~quick:true ()
         :: (Obs.dump reg @ Mon.dump m))
    in
    match Report.of_lines lines with
    | Ok t -> t
    | Error e -> Alcotest.failf "capture did not parse: %s" e
  in
  let manifest_only ~target =
    match
      Report.of_lines
        [ Json.to_string (Manifest.make ~target ~seed:1 ~jobs:1 ~quick:true ()) ]
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "manifest-only trace did not parse: %s" e
  in
  let render a b =
    Format.asprintf "%a"
      (fun ppf () -> Diff.render ppf ~name_a:"a.jsonl" ~name_b:"b.jsonl" a b)
      ()
  in
  [
    t "same-seed captures diff to a one-line verdict" (fun () ->
        let a = capture () and b = capture () in
        check_bool "identical" true (Diff.identical a b);
        let out = render a b in
        check_true "verdict" (contains out "no differences");
        check_true "no sections" (not (contains out "==")));
    t "wall-clock profiler data never breaks the golden verdict" (fun () ->
        (* Same deterministic content, different profiler timings/spans:
           exactly what two real same-seed runs look like.  The verdict
           must hold and the footnote must own up to what was skipped. *)
        let with_timing v =
          let lines =
            List.map Json.to_string
              [
                Manifest.make ~target:"scenario" ~seed:1 ~jobs:1 ~quick:true ();
                Record.to_json (Record.Counter ("E/run.rounds", 6));
                Record.to_json
                  (Record.Series ("E/profile.drain.ns", [| 1.; 2. |], [| v; v +. 7. |]));
                Record.to_json
                  (Record.Span
                     ("E/phase.drain", { Record.count = 8; total_s = v; max_s = v }));
                Record.to_json (Record.Gauge ("E/engine.wheel.depth", v));
              ]
          in
          match Report.of_lines lines with
          | Ok t -> t
          | Error e -> Alcotest.failf "timing trace did not parse: %s" e
        in
        let a = with_timing 10. and b = with_timing 1000. in
        check_bool "identical" true (Diff.identical a b);
        let out = render a b in
        check_true "verdict" (contains out "no differences");
        check_true "footnote" (contains out "wall-clock data not compared"));
    t "different seeds surface skew deltas" (fun () ->
        let a = capture ~seed:42 () and b = capture ~seed:43 () in
        check_bool "not identical" false (Diff.identical a b);
        let out = render a b in
        check_true "seed named in manifest drift"
          (contains out "Manifest differences" && contains out "seed");
        check_true "skew deltas section" (contains out "Skew deltas"));
    t "monitor verdict changes are reported" (fun () ->
        let a = capture () and b = capture ~tighten:1e-6 () in
        let out = render a b in
        check_true "verdict section" (contains out "Monitor verdict changes");
        check_true "breached side named" (contains out "VIOLATED"));
    t "mismatched schema/target pair is called out" (fun () ->
        let a = manifest_only ~target:"E1" and b = manifest_only ~target:"E4" in
        let out = render a b in
        check_true "manifest section" (contains out "Manifest differences");
        check_true "mismatch warning" (contains out "schema/target mismatch"));
  ]

(* The cardinal invariant (tentpole acceptance): telemetry enabled vs
   disabled, and --jobs 1 vs --jobs 4, produce byte-identical rendered
   tables and identical results.  Telemetry only observes - it draws no
   randomness and alters no scheduling - so any divergence here is a bug
   in an instrumentation site. *)
let determinism_tests =
  let render_e1 ?monitor ~traced ~jobs () =
    let e1 =
      match Csync_harness.Registry.find "E1" with
      | Some e -> e
      | None -> Alcotest.fail "E1 not registered"
    in
    let go () =
      Format.asprintf "%a"
        (fun ppf () ->
          Csync_harness.Registry.render_list ~jobs ppf ~quick:true [ e1 ])
        ()
    in
    let go () = if traced then with_installed (Obs.create ()) go else go () in
    match monitor with None -> go () | Some m -> with_monitor m go
  in
  let chaos_skews ~traced ~jobs =
    let params = params () in
    let go () =
      List.map
        (fun r -> r.Csync_harness.Runner_chaos.result.Csync_harness.Runner_chaos.max_clean_skew)
        (Csync_harness.Runner_chaos.campaign ~jobs ~params
           ~seeds:[ 1001; 1002 ] ())
    in
    if traced then with_installed (Obs.create ()) go else go ()
  in
  [
    t "E1 tables byte-identical: telemetry on/off x jobs 1/4" (fun () ->
        let base = render_e1 ~traced:false ~jobs:1 () in
        check_true "render is not vacuous" (String.length base > 200);
        Alcotest.(check string) "traced jobs=1" base
          (render_e1 ~traced:true ~jobs:1 ());
        Alcotest.(check string) "plain jobs=4" base
          (render_e1 ~traced:false ~jobs:4 ());
        Alcotest.(check string) "traced jobs=4" base
          (render_e1 ~traced:true ~jobs:4 ()));
    t "monitored fault-free E1: zero violations, byte-identical tables"
      (fun () ->
        let base = render_e1 ~traced:false ~jobs:1 () in
        let m1 = Mon.create () in
        Alcotest.(check string) "monitored jobs=1" base
          (render_e1 ~monitor:m1 ~traced:false ~jobs:1 ());
        check_true "bounds were evaluated" (Mon.checks_performed m1 > 0);
        check_int "fault-free run is clean" 0 (Mon.violations_total m1);
        let m4 = Mon.create () in
        Alcotest.(check string) "monitored+traced jobs=4" base
          (render_e1 ~monitor:m4 ~traced:true ~jobs:4 ());
        check_int "clean at jobs=4" 0 (Mon.violations_total m4);
        check_int "same evaluations at any jobs" (Mon.checks_performed m1)
          (Mon.checks_performed m4));
    t "chaos skews identical: telemetry on/off x jobs 1/4" (fun () ->
        let base = chaos_skews ~traced:false ~jobs:1 in
        check_int "two campaign runs" 2 (List.length base);
        check_true "skews are meaningful" (List.for_all (fun s -> s > 0.) base);
        let same skews = List.for_all2 Float.equal base skews in
        check_true "traced jobs=1" (same (chaos_skews ~traced:true ~jobs:1));
        check_true "plain jobs=4" (same (chaos_skews ~traced:false ~jobs:4));
        check_true "traced jobs=4" (same (chaos_skews ~traced:true ~jobs:4)));
  ]

(* ---------- binary trace container ---------- *)

module Btrace = Csync_obs.Btrace

(* Arbitrary records for the encode/decode round-trip: every tag, both
   series encodings (integral arrays hit INT_DELTA, fractional RAW64),
   labeled and bare names, linear and log histograms. *)
let record_gen =
  let open QCheck2.Gen in
  let base =
    oneofl
      [ "run.skew"; "net.delay"; "scale.events"; "proc.3.adj"; "profile.drain" ]
  in
  let label = oneofl [ ""; "E1/eps=0.0001"; "ring n=100" ] in
  let name = map2 (fun l b -> if l = "" then b else l ^ "/" ^ b) label base in
  let finite = map (fun f -> if Float.is_finite f then f else 1.5) float in
  let integral = map float_of_int (int_range (-100_000) 100_000) in
  let value = oneof [ finite; integral ] in
  let counter = map2 (fun n v -> Record.Counter (n, v)) name (int_range (-5) 1_000_000) in
  let gauge = map2 (fun n v -> Record.Gauge (n, v)) name finite in
  let series =
    int_range 0 16 >>= fun len ->
    map2
      (fun n (xs, ys) -> Record.Series (n, xs, ys))
      name
      (pair (array_size (return len) value) (array_size (return len) value))
  in
  let hist =
    name >>= fun n ->
    pair finite finite >>= fun (lo, hi) ->
    option (int_range 1 32) >>= fun per_decade ->
    array_size (int_range 0 12) (int_range 0 1000) >>= fun counts ->
    pair (int_range 0 50) (int_range 0 50) >>= fun (underflow, overflow) ->
    int_range 0 5 >>= fun invalid ->
    let total =
      Array.fold_left ( + ) (underflow + overflow + invalid) counts
    in
    return
      (Record.Hist
         ( n,
           { Record.lo; hi; per_decade; counts; underflow; overflow; invalid;
             total } ))
  in
  let span =
    map2
      (fun n (count, (total_s, max_s)) ->
        Record.Span (n, { Record.count; total_s; max_s }))
      name
      (pair (int_range 0 100_000) (pair finite finite))
  in
  let event =
    map2
      (fun n v -> Record.Event (n, Json.Obj [ ("v", Json.num_of_int v) ]))
      name (int_range 0 100)
  in
  let monitor =
    map2
      (fun mname (checks, (violations, first)) ->
        Record.Monitor (mname, { Record.checks; violations; first }))
      (oneofl [ "agreement"; "local_skew" ])
      (pair (int_range 0 1000)
         (pair (int_range 0 5)
            (option (return (Json.Obj [ ("time", Json.Num 1.5) ])))))
  in
  let manifest =
    return
      (Record.Manifest
         (Json.Obj
            [
              ("record", Json.Str "manifest");
              ("schema", Json.Str "csync-trace/1");
              ("target", Json.Str "E1");
            ]))
  in
  let unknown =
    return
      (Record.Unknown
         ("zzz", Json.Obj [ ("record", Json.Str "zzz"); ("k", Json.Num 2.) ]))
  in
  oneof [ counter; gauge; series; hist; span; event; monitor; manifest; unknown ]

let with_tmp suffix f =
  let path = Filename.temp_file "csync_test" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let btrace_tests =
  [
    qcheck ~count:100 ~name:"btrace encode/decode round-trips every record"
      QCheck2.Gen.(list_size (0 -- 20) record_gen)
      (fun records ->
        with_tmp ".btrace" (fun path ->
            Btrace.write_file path records;
            match Btrace.fold_file path ~init:[] ~f:(fun acc r -> r :: acc) with
            | Error e -> QCheck2.Test.fail_reportf "read failed: %s" e
            | Ok rev -> List.rev rev = records));
    t "btrace magic is sniffable and jsonl is not" (fun () ->
        with_tmp ".btrace" (fun path ->
            Btrace.write_file path [ Record.Counter ("a", 1) ];
            check_true "btrace sniffs" (Btrace.sniff_file path));
        with_tmp ".jsonl" (fun path ->
            let oc = open_out path in
            output_string oc "{\"record\":\"counter\",\"name\":\"a\",\"value\":1}\n";
            close_out oc;
            check_true "jsonl does not sniff" (not (Btrace.sniff_file path))));
    t "a truncated tail is truncation, not garbage" (fun () ->
        with_tmp ".btrace" (fun path ->
            Btrace.write_file path
              [
                Record.Counter ("whole", 7);
                Record.Series
                  ("tail", [| 1.; 2.; 3. |], [| 0.5; 0.25; 0.125 |]);
              ];
            let bytes = read_all path in
            with_tmp ".cut" (fun cut ->
                let oc = open_out_bin cut in
                output_string oc (String.sub bytes 0 (String.length bytes - 4));
                close_out oc;
                (match Btrace.fold_file cut ~init:0 ~f:(fun n _ -> n + 1) with
                | Error e -> check_true "names truncation" (contains e "truncated")
                | Ok _ -> Alcotest.fail "expected a truncation error");
                (* The streaming reader rewinds at the cut, stably - what
                   csync top leans on while the writer is mid-record. *)
                let ic = open_in_bin cut in
                Fun.protect
                  ~finally:(fun () -> close_in ic)
                  (fun () ->
                    match Btrace.reader ic with
                    | Error e -> Alcotest.fail e
                    | Ok r ->
                      (match Btrace.next r with
                      | `Record (Record.Counter ("whole", 7)) -> ()
                      | _ -> Alcotest.fail "expected the whole record first");
                      check_true "truncated" (Btrace.next r = `Truncated);
                      check_true "stable on retry" (Btrace.next r = `Truncated));
                (* Once the writer finishes the record, a fresh pass reads
                   the whole file. *)
                let oc =
                  open_out_gen [ Open_append; Open_binary ] 0o644 cut
                in
                output_string oc
                  (String.sub bytes
                     (String.length bytes - 4)
                     4);
                close_out oc;
                match Btrace.fold_file cut ~init:0 ~f:(fun n _ -> n + 1) with
                | Ok 2 -> ()
                | Ok n -> Alcotest.failf "expected 2 records, got %d" n
                | Error e -> Alcotest.fail e)));
    t "report reads the binary container" (fun () ->
        with_tmp ".btrace" (fun path ->
            Btrace.write_file path
              [
                Record.Manifest
                  (Json.Obj
                     [
                       ("record", Json.Str "manifest");
                       ("target", Json.Str "E9");
                     ]);
                Record.Counter ("cell/n.events", 12);
                Record.Series ("cell/run.skew", [| 1.; 2. |], [| 0.5; 0.25 |]);
              ];
            match Report.of_file path with
            | Error e -> Alcotest.fail e
            | Ok rep ->
              check_int "counter survives" 12
                (List.assoc "cell/n.events" (Report.counters rep));
              check_int "series survives" 1 (List.length (Report.series rep))));
    t "canonical keeps the computation, drops the wall clock" (fun () ->
        let manifest =
          Json.Obj
            [
              ("record", Json.Str "manifest");
              ("target", Json.Str "E1");
              ("seed", Json.num_of_int 7);
              ("jobs", Json.num_of_int 4);
              ("captured_unix", Json.Num 1.7e9);
              ("git_rev", Json.Str "abc");
            ]
        in
        let keep_series =
          Record.Series ("E1/run.skew", [| 1. |], [| 0.5 |])
        in
        let records =
          [
            Record.Manifest manifest;
            Record.Counter ("E1/run.count", 3);
            Record.Counter ("pool.tasks.worker0", 5);
            Record.Gauge ("sim.queue_depth_hw", 9.);
            Record.Span
              ("E1/profile.drain", { Record.count = 1; total_s = 0.1; max_s = 0.1 });
            Record.Series ("E1/profile.drain.ns", [| 0. |], [| 100. |]);
            Record.Series ("obs.worker3", [| 0. |], [| 1. |]);
            keep_series;
            Record.Monitor
              ("agreement", { Record.checks = 2; violations = 0; first = None });
          ]
        in
        match Record.canonical records with
        | [ Record.Manifest m; Record.Counter ("E1/run.count", 3); s; mon ] ->
          check_true "volatile manifest fields stripped"
            (Json.member "captured_unix" m = None
            && Json.member "git_rev" m = None
            && Json.member "jobs" m = None);
          check_true "target survives" (Json.member "target" m <> None);
          check_true "series kept" (s = keep_series);
          check_true "monitor kept"
            (match mon with Record.Monitor ("agreement", _) -> true | _ -> false)
        | other ->
          Alcotest.failf "unexpected canonical shape (%d records)"
            (List.length other));
  ]

(* ---------- worker shards and the round-phase profiler ---------- *)

module Shard = Csync_obs.Shard
module Profile = Csync_obs.Profile

let report_of_registry reg =
  Report.of_records
    (List.filter_map
       (fun j -> Result.to_option (Record.of_json j))
       (Obs.dump reg))

let shard_profile_tests =
  [
    t "shard cells fold into the registry on merge" (fun () ->
        let reg = Obs.create () in
        let sh = Shard.create reg in
        check_true "active on a live registry" (Shard.active sh);
        let c = Shard.counter sh "s.count" in
        Shard.Counter.add c 3;
        Shard.Counter.incr c;
        check_int "local value" 4 (Shard.Counter.value c);
        let h = Shard.hist sh ~lo:0. ~hi:10. ~bins:5 "s.h" in
        Shard.Hist.add h 1.;
        Shard.Hist.add h 7.;
        let hl = Shard.hist_log sh ~lo:1e-3 ~hi:1. ~per_decade:4 "s.hl" in
        Shard.Hist.add hl 0.01;
        let sr = Shard.series sh "s.series" in
        Shard.Series.push sr 1. 10.;
        Shard.Series.push sr 2. 20.;
        let sp = Shard.span sh "s.span" in
        Shard.Span.record sp 0.5;
        check_int "nothing reaches the registry before merge" 0
          (List.length (Report.counters (report_of_registry reg)));
        Shard.merge sh;
        let rep = report_of_registry reg in
        check_int "counter merged" 4 (List.assoc "s.count" (Report.counters rep));
        let hr = List.assoc "s.h" (Report.hists rep) in
        check_int "hist merged" 2 hr.Report.total;
        let hlr = List.assoc "s.hl" (Report.hists rep) in
        check_true "log shape survives" (hlr.Report.per_decade = Some 4);
        let _, xs, ys =
          List.find (fun (n, _, _) -> n = "s.series") (Report.series rep)
        in
        check_true "series points appended in order"
          (xs = [| 1.; 2. |] && ys = [| 10.; 20. |]);
        let spr = List.assoc "s.span" (Report.spans rep) in
        check_int "span count" 1 spr.Report.count;
        check_float "span total" 0.5 spr.Report.total_s);
    t "shard names intern per kind and reject clashes" (fun () ->
        let sh = Shard.create (Obs.create ()) in
        let a = Shard.counter sh "x" in
        Shard.Counter.incr a;
        Shard.Counter.incr (Shard.counter sh "x");
        check_int "same cell" 2 (Shard.Counter.value a);
        check_raises_invalid "kind clash" (fun () ->
            ignore (Shard.series sh "x")));
    t "disabled shard is inert" (fun () ->
        let sh = Shard.create Obs.none in
        check_true "inactive" (not (Shard.active sh));
        let c = Shard.counter sh "dead" in
        Shard.Counter.incr c;
        check_int "no-op counter" 0 (Shard.Counter.value c);
        check_true "no-op hist"
          (not (Shard.Hist.active (Shard.hist sh ~lo:0. ~hi:1. ~bins:2 "h")));
        Shard.merge sh);
    t "profiler spans and per-occurrence series accumulate" (fun () ->
        let reg = Obs.create () in
        let p = Profile.create reg in
        check_true "active" (Profile.active p);
        check_int "passthrough" 42 (Profile.time p Profile.Merge (fun () -> 42));
        Profile.record_ns p Profile.Merge 1_000_000;
        (* A fresh profiler over the same registry continues the same
           interned instruments - the per-round case in Scale.round. *)
        Profile.record_ns (Profile.create reg) Profile.Merge 2_000_000;
        let rep = report_of_registry reg in
        let spr = List.assoc "profile.merge" (Report.spans rep) in
        check_int "three occurrences" 3 spr.Report.count;
        let _, xs, ys =
          List.find (fun (n, _, _) -> n = "profile.merge.ns") (Report.series rep)
        in
        check_true "x is the occurrence index" (xs = [| 0.; 1.; 2. |]);
        check_float "recorded ns" 1_000_000. ys.(1);
        check_float "continues across instances" 2_000_000. ys.(2));
    t "disabled profiler is an exact passthrough" (fun () ->
        check_true "inactive" (not (Profile.active Profile.disabled));
        check_int "result" 7
          (Profile.time Profile.disabled Profile.Drain (fun () -> 7));
        Profile.record_ns Profile.disabled Profile.Checksum 5;
        check_true "time is monotone nonneg" (Profile.now_ns () >= 0));
    t "profiler timing also records when the thunk raises" (fun () ->
        let reg = Obs.create () in
        let p = Profile.create reg in
        (match Profile.time p Profile.Apply (fun () -> failwith "boom") with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected the exception through");
        let rep = report_of_registry reg in
        check_int "occurrence recorded" 1
          (List.assoc "profile.apply" (Report.spans rep)).Report.count);
  ]

(* ---------- csync top ---------- *)

module Top = Csync_obs.Top

let top_tests =
  [
    t "top frame renders every section from a report" (fun () ->
        let rep =
          Report.of_records
            [
              Record.Manifest
                (Json.Obj
                   [
                     ("record", Json.Str "manifest");
                     ("target", Json.Str "E16");
                     ("seed", Json.num_of_int 7);
                     ("jobs", Json.num_of_int 4);
                   ]);
              Record.Series
                ( "cell/scale.spread",
                  [| 1.; 2.; 3. |],
                  [| 0.5; 0.25; 0.125 |] );
              Record.Series
                ( "cell/scale.events_per_round",
                  [| 1.; 2.; 3. |],
                  [| 10.; 10.; 10. |] );
              Record.Counter ("cell/scale.events", 30);
              Record.Counter ("chaos.dropped", 2);
              Record.Span
                ( "cell/profile.drain",
                  { Record.count = 3; total_s = 0.3; max_s = 0.2 } );
              Record.Span
                ( "cell/profile.merge",
                  { Record.count = 3; total_s = 0.1; max_s = 0.05 } );
              Record.Monitor
                ("local_skew", { Record.checks = 10; violations = 0; first = None });
              Record.Monitor
                ("agreement", { Record.checks = 5; violations = 2; first = None });
            ]
        in
        let f = Top.frame rep ~path:"test.btrace" in
        List.iter
          (fun needle ->
            check_true (Printf.sprintf "frame mentions %S" needle)
              (contains f needle))
          [
            "csync top — E16"; "seed 7"; "jobs 4"; "cell cell"; "round 3";
            "events 30"; "scale.spread"; "scale.events_per_round"; "drain";
            "merge"; "75"; "[ok]   local_skew"; "[FAIL] agreement";
            "chaos.dropped";
          ];
        check_true "drain bar dominates"
          (contains f "drain        ########################"));
    t "top frame degrades gracefully on an empty trace" (fun () ->
        let f = Top.frame (Report.of_records []) ~path:"x" in
        check_true "header still renders" (contains f "csync top"));
    t "top watch --once renders a written trace" (fun () ->
        with_tmp ".btrace" (fun path ->
            Btrace.write_file path
              [ Record.Counter ("cell/scale.events", 3) ];
            check_true "ok" (Top.watch ~once:true path = Ok ())));
  ]

(* ---------- streaming feed + fleet collection ---------- *)

module Collect = Csync_obs.Collect

(* Encode records the way the fleet emitter does: the sink-based writer
   producing one self-contained btrace segment (magic + whole frames). *)
let segment records =
  let b = Buffer.create 256 in
  let w = Btrace.writer_fn (Buffer.add_string b) in
  List.iter (Btrace.write w) records;
  Btrace.close_writer w;
  Buffer.contents b

(* Cut [s] into chunks of the given sizes (clamped to >= 1); leftover
   bytes become one final chunk. *)
let rec chunks_of sizes s =
  if String.length s = 0 then []
  else
    match sizes with
    | [] -> [ s ]
    | k :: rest ->
      let k = max 1 (min k (String.length s)) in
      String.sub s 0 k :: chunks_of rest (String.sub s k (String.length s - k))

let drain_feed fd =
  let rec go acc =
    match Btrace.feed_next fd with
    | `Record r -> go (r :: acc)
    | `Await -> List.rev acc
    | `Error e -> Alcotest.failf "unexpected feed error: %s" e
  in
  go []

let collect_tests =
  [
    (* The tentpole streaming property: the sink writer emits only whole
       frames, so flushing (chunking) at ANY byte boundary concatenates
       to exactly the one-shot encoding, and the byte-feed reader
       decodes it identically however the chunks are cut. *)
    qcheck ~count:100
      ~name:"chunked encode at arbitrary flush points decodes one-shot"
      QCheck2.Gen.(
        pair
          (list_size (0 -- 12) record_gen)
          (list_size (0 -- 60) (int_range 1 9)))
      (fun (records, sizes) ->
        let seg = segment records in
        with_tmp ".btrace" (fun path ->
            Btrace.write_file path records;
            read_all path = seg)
        &&
        let fd = Btrace.feed () in
        let got =
          List.concat_map
            (fun chunk ->
              Btrace.feed_bytes fd chunk;
              drain_feed fd)
            (chunks_of sizes seg)
        in
        got = records);
    t "feed_reset discards a half-written record and the intern table"
      (fun () ->
        let recs = [ Record.Counter ("run.a", 1); Record.Gauge ("run.b", 2.) ] in
        let seg = segment recs in
        let fd = Btrace.feed () in
        (* Everything but the trailing bytes: run.b's frame is cut. *)
        Btrace.feed_bytes fd (String.sub seg 0 (String.length seg - 3));
        let got = drain_feed fd in
        check_true "only whole records decoded"
          (got = [ Record.Counter ("run.a", 1) ]);
        (* After a reset the feed expects a fresh stream: a new segment
           re-interning the same names decodes cleanly. *)
        Btrace.feed_reset fd;
        Btrace.feed_bytes fd (segment [ Record.Gauge ("run.b", 7.5) ]);
        check_true "fresh stream decodes after reset"
          (drain_feed fd = [ Record.Gauge ("run.b", 7.5) ]));
    t "collector survives a stream dying mid-record" (fun () ->
        let a = Record.Counter ("run.a", 1)
        and b = Record.Gauge ("run.b", 2.5)
        and c = Record.Counter ("run.c", 3) in
        let seg = segment [ a; b; c ] in
        (* The stream dies a couple of bytes into [c]'s frames; the
           emitter restarts from scratch (fresh seq, fresh interns). *)
        let head = String.sub seg 0 (String.length (segment [ a; b ]) + 2) in
        let t' = Collect.create () in
        Collect.frame t' ~src:0 ~seq:0 ~ts_ns:100 head;
        Collect.frame t' ~src:0 ~seq:0 ~ts_ns:200
          (segment [ Record.Counter ("run.d", 9) ]);
        let s = List.hd (Collect.stats t') in
        check_int "resets" 1 s.Collect.resets;
        check_int "gaps" 0 s.Collect.gaps;
        check_int "errors" 0 s.Collect.errors;
        check_int "whole records survive, the torn one is dropped" 3
          s.Collect.records;
        check_true "reconnected stream decodes on a fresh intern table"
          (List.mem (Record.Counter ("p0/run.d", 9)) (Collect.merged t')));
    t "a lost frame desyncs a stream only until the next segment head"
      (fun () ->
        let seg1 =
          segment [ Record.Counter ("run.a", 1); Record.Gauge ("run.b", 2.) ]
        in
        let k = String.length Btrace.magic + 2 in
        let f0 = String.sub seg1 0 k in
        let f1 = String.sub seg1 k (String.length seg1 - k) in
        let t' = Collect.create () in
        Collect.frame t' ~src:3 ~seq:0 ~ts_ns:10 f0;
        (* f1 (seq 1) is lost in transit; a straggler with a later seq
           must be skipped, not decoded against the torn buffer... *)
        Collect.frame t' ~src:3 ~seq:3 ~ts_ns:15 f1;
        (* ...and the next flush's segment head resynchronizes. *)
        Collect.frame t' ~src:3 ~seq:4 ~ts_ns:20
          (segment [ Record.Counter ("run.c", 7) ]);
        let s = List.hd (Collect.stats t') in
        check_true "gap counted" (s.Collect.gaps >= 1);
        check_true "lost frames counted" (s.Collect.lost >= 1);
        check_int "straggler skipped" 1 s.Collect.skipped;
        check_int "resync decoded the new segment" 1 s.Collect.records;
        check_int "no resets from loss alone" 0 s.Collect.resets);
    t "merged fleet trace is canonical across stream arrival orders"
      (fun () ->
        (* Two nodes emit the SAME metric names with different values:
           per-node feeds keep the clashing intern tables apart, and the
           (ts, src, seq, idx) merge key makes the output byte-identical
           for any interleaving that preserves per-node frame order. *)
        let node_frames src v =
          [
            (src, 0, 100 + src, segment [ Record.Counter ("run.a", v) ]);
            ( src,
              1,
              300 + src,
              segment
                [
                  Record.Gauge ("net.delay", float_of_int v /. 8.);
                  Record.Counter ("run.a", v + 1);
                ] );
          ]
        in
        let f0 = node_frames 0 1 and f1 = node_frames 1 40 in
        let feed_all frames =
          let t' = Collect.create () in
          List.iter
            (fun (src, seq, ts_ns, p) -> Collect.frame t' ~src ~seq ~ts_ns p)
            frames;
          t'
        in
        (* node0 first vs perfectly interleaved vs node1 first *)
        let orders =
          [
            f0 @ f1;
            f1 @ f0;
            (match (f0, f1) with
            | [ a0; a1 ], [ b0; b1 ] -> [ b0; a0; a1; b1 ]
            | _ -> assert false);
          ]
        in
        let bytes_of frames =
          let t' = feed_all frames in
          with_tmp ".btrace" (fun path ->
              Collect.write_merged t' path;
              read_all path)
        in
        (match List.map bytes_of orders with
        | first :: rest ->
          List.iteri
            (fun i b ->
              check_true
                (Printf.sprintf "order %d byte-identical" (i + 1))
                (b = first))
            rest
        | [] -> assert false);
        let m = Collect.merged (feed_all (f0 @ f1)) in
        check_true "p0 keeps its own values"
          (List.mem (Record.Counter ("p0/run.a", 1)) m);
        check_true "p1 keeps its own values"
          (List.mem (Record.Counter ("p1/run.a", 40)) m);
        check_true "accounting is appended"
          (List.mem (Record.Counter ("p1/collect.frames", 2)) m));
    t "fleet skew pairing cancels the symmetric delay" (fun () ->
        let xs = Array.init 10 float_of_int in
        let recs =
          [
            Record.Manifest
              (Json.Obj
                 [
                   ("record", Json.Str "manifest");
                   ("target", Json.Str "fleet");
                   ("nodes", Json.Arr [ Json.num_of_int 0; Json.num_of_int 1 ]);
                   ("params", Json.Obj [ ("gamma", Json.Num 0.1) ]);
                 ]);
            (* A symmetric 20 ms transit delay plus a true 20 ms skew:
               p0 sees p1 early by skew+delay, p1 sees p0 late. *)
            Record.Series ("p0/fleet.offset.p1", xs, Array.make 10 0.03);
            Record.Series ("p1/fleet.offset.p0", xs, Array.make 10 (-0.01));
            (* One-directional data must be reported, not silently paired. *)
            Record.Series ("p0/fleet.offset.p2", xs, Array.make 10 0.5);
          ]
        in
        let r = Report.of_records recs in
        let f = Report.fleet r in
        check_true "gamma read from manifest params"
          (f.Report.fleet_gamma = Some 0.1);
        (match f.Report.fleet_pairs with
        | [ p ] ->
          check_int "pair a" 0 p.Report.node_a;
          check_int "pair b" 1 p.Report.node_b;
          check_float "delay cancelled" 0.02 p.Report.measured
        | ps -> Alcotest.failf "expected 1 pair, got %d" (List.length ps));
        check_float "fleet max" 0.02 f.Report.fleet_max;
        check_true "unpaired direction surfaced"
          (List.mem (0, 2) f.Report.fleet_unpaired);
        let out = Format.asprintf "%a" Report.render_fleet r in
        check_true "verdict rendered" (contains out "within gamma");
        check_true "pair row rendered" (contains out "p0"));
  ]

let suite =
  json_tests @ registry_tests @ manifest_tests @ report_tests
  @ forward_compat_tests @ monitor_tests @ provenance_tests @ diff_tests
  @ determinism_tests @ btrace_tests @ shard_profile_tests @ collect_tests
  @ top_tests
