(* Tests for the telemetry subsystem: JSON round-trips, registry
   semantics, the trace/report pipeline, and the cardinal invariant -
   telemetry on/off and any worker count leave experiment output
   byte-identical. *)

module Obs = Csync_obs.Registry
module Json = Csync_obs.Json
module Manifest = Csync_obs.Manifest
module Report = Csync_obs.Report
open Helpers

let t name f = Alcotest.test_case name `Quick f

(* Every test that installs a registry must clear it, or a failure would
   leak telemetry into unrelated suites. *)
let with_installed reg f =
  Obs.install reg;
  Fun.protect ~finally:Obs.clear_installed f

let json_tests =
  [
    t "writer emits canonical scalars" (fun () ->
        Alcotest.(check string)
          "obj" {|{"a":1,"b":true,"c":"x\n","d":null}|}
          (Json.to_string
             (Json.Obj
                [
                  ("a", Json.num_of_int 1);
                  ("b", Json.Bool true);
                  ("c", Json.Str "x\n");
                  ("d", Json.Null);
                ]));
        Alcotest.(check string)
          "ints have no fraction" "[3,-2,0]"
          (Json.to_string (Json.Arr [ Json.Num 3.; Json.Num (-2.); Json.Num 0. ]));
        Alcotest.(check string) "nan encodes as null" "null"
          (Json.to_string (Json.Num Float.nan)));
    t "parser round-trips the writer" (fun () ->
        let v =
          Json.Obj
            [
              ("name", Json.Str "net.delay.0->1");
              ("xs", Json.Arr [ Json.Num 0.1; Json.Num 1e-9; Json.Num 12345.25 ]);
              ("quote", Json.Str "a\"b\\c\td");
              ("flags", Json.Arr [ Json.Bool false; Json.Null ]);
            ]
        in
        match Json.of_string (Json.to_string v) with
        | Error e -> Alcotest.failf "parse failed: %s" e
        | Ok v' -> check_true "round-trip" (v = v'));
    t "floats survive exactly" (fun () ->
        let f = 0.1 +. 0.2 in
        match Json.of_string (Json.to_string (Json.Num f)) with
        | Ok (Json.Num f') -> check_true "bit-exact" (Float.equal f f')
        | _ -> Alcotest.fail "expected a number");
    t "parser rejects garbage" (fun () ->
        check_true "trailing" (Result.is_error (Json.of_string "{} x"));
        check_true "unterminated" (Result.is_error (Json.of_string "[1,"));
        check_true "bad literal" (Result.is_error (Json.of_string "troo")));
  ]

let registry_tests =
  [
    t "disabled registry handles are no-ops" (fun () ->
        let r = Obs.none in
        let c = Obs.counter r "c" in
        Obs.Counter.incr c;
        check_int "counter" 0 (Obs.Counter.value c);
        let g = Obs.gauge r "g" in
        check_bool "inactive" false (Obs.Gauge.active g);
        Obs.Gauge.set g 5.;
        check_true "no value" (Obs.Gauge.value g = None);
        let s = Obs.series r "s" in
        Obs.Series.push s 1. 2.;
        check_true "no points" (Obs.Series.points s = []);
        Obs.event r "e" [];
        check_int "no records" 0 (List.length (Obs.dump r)));
    t "counters and gauges accumulate" (fun () ->
        let r = Obs.create () in
        let c = Obs.counter r "c" in
        Obs.Counter.incr c;
        Obs.Counter.add c 4;
        check_int "counter" 5 (Obs.Counter.value c);
        (* Interning: same name, same cell. *)
        Obs.Counter.incr (Obs.counter r "c");
        check_int "interned" 6 (Obs.Counter.value c);
        let g = Obs.gauge r "g" in
        Obs.Gauge.observe_max g 2.;
        Obs.Gauge.observe_max g 7.;
        Obs.Gauge.observe_max g 3.;
        check_true "high water" (Obs.Gauge.value g = Some 7.));
    t "series keeps insertion order" (fun () ->
        let r = Obs.create () in
        let s = Obs.series r "s" in
        for i = 1 to 100 do
          Obs.Series.push s (float_of_int i) (float_of_int (i * i))
        done;
        let pts = Obs.Series.points s in
        check_int "length" 100 (List.length pts);
        check_true "first" (List.hd pts = (1., 1.));
        check_true "last" (List.nth pts 99 = (100., 10000.)));
    t "span records durations" (fun () ->
        let r = Obs.create () in
        let p = Obs.span r "p" in
        Obs.Span.record p 0.5;
        let v = Obs.Span.time p (fun () -> 42) in
        check_int "result" 42 v;
        check_int "count" 2 (Obs.Span.count p));
    t "label prefixes minted names" (fun () ->
        let r = Obs.create () in
        Obs.set_label r "cell A";
        Obs.Counter.incr (Obs.counter r "x");
        Obs.set_label r "";
        Obs.Counter.incr (Obs.counter r "x");
        let names =
          List.filter_map
            (fun j -> Option.bind (Json.member "name" j) Json.to_str)
            (Obs.dump r)
        in
        check_true "labeled" (List.mem "cell A/x" names);
        check_true "unlabeled" (List.mem "x" names));
    t "dump is sorted and parseable" (fun () ->
        let r = Obs.create () in
        Obs.Counter.incr (Obs.counter r "b");
        Obs.Counter.incr (Obs.counter r "a");
        let h = Obs.hist r ~lo:0. ~hi:1. ~bins:4 "h" in
        Obs.Hist.add h 0.5;
        Obs.Hist.add h Float.nan;
        Obs.event r "ev" [ ("k", Json.Str "v") ];
        let dump = Obs.dump r in
        let lines = List.map Json.to_string dump in
        List.iter
          (fun line ->
            match Report.check_line line with
            | Ok () -> ()
            | Error e -> Alcotest.failf "bad record %s: %s" line e)
          lines;
        let counter_names =
          List.filter_map
            (fun j ->
              match Json.member "record" j with
              | Some (Json.Str "counter") ->
                Option.bind (Json.member "name" j) Json.to_str
              | _ -> None)
            dump
        in
        check_true "sorted" (counter_names = [ "a"; "b" ]));
    t "event cap drops excess and reports it" (fun () ->
        let r = Obs.create () in
        for _ = 1 to 65537 do
          Obs.event r "e" []
        done;
        let dump = Obs.dump r in
        let dropped =
          List.exists
            (fun j ->
              Json.member "name" j = Some (Json.Str "obs.events_dropped"))
            dump
        in
        check_true "dropped counter present" dropped);
  ]

let manifest_tests =
  [
    t "manifest shape" (fun () ->
        let m = Manifest.make ~target:"E1" ~seed:7 ~jobs:2 ~quick:true () in
        check_true "record" (Json.member "record" m = Some (Json.Str "manifest"));
        check_true "schema"
          (Json.member "schema" m = Some (Json.Str Manifest.schema));
        check_true "seed"
          (Option.bind (Json.member "seed" m) Json.to_int = Some 7);
        match Report.check_line (Json.to_string m) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "manifest rejected: %s" e);
  ]

let report_tests =
  [
    t "trace parses and renders every section" (fun () ->
        let r = Obs.create () in
        let run () =
          let params = params () in
          let scenario = Csync_harness.Scenario.default ~seed:42 params in
          Csync_harness.Scenario.run
            { scenario with Csync_harness.Scenario.rounds = 6 }
        in
        let _ = with_installed r run in
        let lines =
          Json.to_string (Manifest.make ~target:"test" ~seed:42 ~jobs:1 ~quick:true ())
          :: List.map Json.to_string (Obs.dump r)
        in
        match Report.of_lines lines with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok parsed ->
          let out = Format.asprintf "%a" (Report.render ?focus:None) parsed in
          check_true "manifest section" (contains out "== Manifest ==");
          check_true "skew timeline" (contains out "run.skew");
          check_true "adj table" (contains out "ADJ per round");
          check_true "delay histogram" (contains out "net.delay");
          check_true "sim counter" (contains out "sim.events"));
    t "malformed lines are rejected with a line number" (fun () ->
        match Report.of_lines [ "{\"record\":\"manifest\"}"; "{oops" ] with
        | Ok _ -> Alcotest.fail "expected parse error"
        | Error e -> check_true "names line 2" (contains e "line 2"));
  ]

(* The cardinal invariant (tentpole acceptance): telemetry enabled vs
   disabled, and --jobs 1 vs --jobs 4, produce byte-identical rendered
   tables and identical results.  Telemetry only observes - it draws no
   randomness and alters no scheduling - so any divergence here is a bug
   in an instrumentation site. *)
let determinism_tests =
  let render_e1 ~traced ~jobs =
    let e1 =
      match Csync_harness.Registry.find "E1" with
      | Some e -> e
      | None -> Alcotest.fail "E1 not registered"
    in
    let go () =
      Format.asprintf "%a"
        (fun ppf () ->
          Csync_harness.Registry.render_list ~jobs ppf ~quick:true [ e1 ])
        ()
    in
    if traced then with_installed (Obs.create ()) go else go ()
  in
  let chaos_skews ~traced ~jobs =
    let params = params () in
    let go () =
      List.map
        (fun r -> r.Csync_harness.Runner_chaos.result.Csync_harness.Runner_chaos.max_clean_skew)
        (Csync_harness.Runner_chaos.campaign ~jobs ~params
           ~seeds:[ 1001; 1002 ] ())
    in
    if traced then with_installed (Obs.create ()) go else go ()
  in
  [
    t "E1 tables byte-identical: telemetry on/off x jobs 1/4" (fun () ->
        let base = render_e1 ~traced:false ~jobs:1 in
        check_true "render is not vacuous" (String.length base > 200);
        Alcotest.(check string) "traced jobs=1" base (render_e1 ~traced:true ~jobs:1);
        Alcotest.(check string) "plain jobs=4" base (render_e1 ~traced:false ~jobs:4);
        Alcotest.(check string) "traced jobs=4" base (render_e1 ~traced:true ~jobs:4));
    t "chaos skews identical: telemetry on/off x jobs 1/4" (fun () ->
        let base = chaos_skews ~traced:false ~jobs:1 in
        check_int "two campaign runs" 2 (List.length base);
        check_true "skews are meaningful" (List.for_all (fun s -> s > 0.) base);
        let same skews = List.for_all2 Float.equal base skews in
        check_true "traced jobs=1" (same (chaos_skews ~traced:true ~jobs:1));
        check_true "plain jobs=4" (same (chaos_skews ~traced:false ~jobs:4));
        check_true "traced jobs=4" (same (chaos_skews ~traced:true ~jobs:4)));
  ]

let suite =
  json_tests @ registry_tests @ manifest_tests @ report_tests
  @ determinism_tests
