(* Tests for drift profiles, hardware clocks and logical-clock helpers -
   including property tests of the rho-bound lemmas of Section 3.1. *)

module Drift = Csync_clock.Drift
module Hw = Csync_clock.Hardware_clock
module Lc = Csync_clock.Logical_clock
module Rng = Csync_sim.Rng
open Helpers

let t name f = Alcotest.test_case name `Quick f

let drift_tests =
  [
    t "perfect is rate 1" (fun () ->
        check_true "bounds" (Drift.rate_bounds Drift.perfect = (1., 1.)));
    t "fast and slow hit the rho band edges" (fun () ->
        let rho = 1e-3 in
        let lo, hi = Drift.rate_bounds (Drift.fast ~rho) in
        check_float "fast" (1. +. rho) hi;
        check_float "fast lo" (1. +. rho) lo;
        let lo, _ = Drift.rate_bounds (Drift.slow ~rho) in
        check_float "slow" (1. /. (1. +. rho)) lo);
    t "rho-bounded checks" (fun () ->
        check_true "fast ok" (Drift.is_rho_bounded ~rho:1e-3 (Drift.fast ~rho:1e-3));
        check_true "too fast" (not (Drift.is_rho_bounded ~rho:1e-4 (Drift.fast ~rho:1e-3)));
        check_true "perfect ok" (Drift.is_rho_bounded ~rho:0. Drift.perfect));
    t "constant rejects nonpositive" (fun () ->
        check_raises_invalid "rate" (fun () -> ignore (Drift.constant ~rate:0.)));
    t "random stays in band" (fun () ->
        let rng = Rng.create 5 in
        for _ = 1 to 20 do
          let p = Drift.random ~rng ~rho:1e-4 ~segment_duration:0.5 ~horizon:10. in
          check_true "bounded" (Drift.is_rho_bounded ~rho:1e-4 p)
        done);
    t "oscillating stays in band and validates" (fun () ->
        let p = Drift.oscillating ~rho:1e-4 ~period:1. ~steps_per_period:8 ~horizon:5. in
        check_true "bounded" (Drift.is_rho_bounded ~rho:1e-4 p);
        check_raises_invalid "steps" (fun () ->
            ignore (Drift.oscillating ~rho:1e-4 ~period:1. ~steps_per_period:1 ~horizon:5.)));
    t "alternating extremes" (fun () ->
        let p = Drift.alternating ~rho:1e-4 ~segment_duration:1. ~horizon:4. in
        let lo, hi = Drift.rate_bounds p in
        check_float "lo" (1. /. 1.0001) lo;
        check_float "hi" 1.0001 hi);
  ]

let gen_profile_and_times =
  let open QCheck2.Gen in
  let* seed = int_range 0 10_000 in
  let* t1 = float_bound_inclusive 20. in
  let* t2 = float_bound_inclusive 20. in
  return (seed, Float.min t1 t2, Float.max t1 t2)

let rho = 1e-4

let make_clock seed =
  let rng = Rng.create seed in
  let profile = Drift.random ~rng ~rho ~segment_duration:0.7 ~horizon:25. in
  Hw.create ~t0:0. ~offset:(Rng.uniform rng ~lo:(-5.) ~hi:5.) profile

let hw_tests =
  [
    t "linear clock reads offset at t0" (fun () ->
        let c = Hw.create ~t0:2. ~offset:10. Drift.perfect in
        check_float "at t0" 12. (Hw.time c 2.);
        check_float "later" 15. (Hw.time c 5.));
    t "constant-rate clock arithmetic" (fun () ->
        let c = Hw.create ~offset:0. (Drift.constant ~rate:2.) in
        check_float "time" 6. (Hw.time c 3.);
        check_float "inverse" 3. (Hw.inverse c 6.));
    t "piecewise segments compose" (fun () ->
        let c = Hw.create (Drift.Piecewise [ (1., 2.); (1., 0.5) ]) in
        check_float "end of fast" 2. (Hw.time c 1.);
        check_float "end of slow" 2.5 (Hw.time c 2.);
        (* last rate extends *)
        check_float "beyond" 3. (Hw.time c 3.));
    t "extends backwards before t0" (fun () ->
        let c = Hw.create ~t0:0. (Drift.constant ~rate:2.) in
        check_float "before" (-2.) (Hw.time c (-1.)));
    t "rate_at right-continuous" (fun () ->
        let c = Hw.create (Drift.Piecewise [ (1., 2.); (1., 0.5) ]) in
        check_float "seg0" 2. (Hw.rate_at c 0.5);
        check_float "seg1" 0.5 (Hw.rate_at c 1.);
        check_float "beyond" 0.5 (Hw.rate_at c 10.));
    t "offset_at" (fun () ->
        let c = Hw.create ~offset:3. Drift.perfect in
        check_float "offset" 3. (Hw.offset_at c 7.));
    t "rejects nonpositive durations and rates" (fun () ->
        check_raises_invalid "duration" (fun () ->
            ignore (Hw.create (Drift.Piecewise [ (0., 1.) ])));
        check_raises_invalid "rate" (fun () ->
            ignore (Hw.create (Drift.Piecewise [ (1., -1.) ]))));
    qcheck ~name:"inverse is a right inverse of time" gen_profile_and_times
      (fun (seed, t1, _) ->
        let c = make_clock seed in
        let v = Hw.time c t1 in
        Float.abs (Hw.inverse c v -. t1) < 1e-6);
    qcheck ~name:"time is monotone" gen_profile_and_times (fun (seed, t1, t2) ->
        let c = make_clock seed in
        t1 = t2 || Hw.time c t1 < Hw.time c t2);
    qcheck ~name:"Lemma 1: elapsed clock time within rho band"
      gen_profile_and_times (fun (seed, t1, t2) ->
        let c = make_clock seed in
        let dt = t2 -. t1 and dc = Hw.time c t2 -. Hw.time c t1 in
        dc >= (dt /. (1. +. rho)) -. 1e-9 && dc <= (dt *. (1. +. rho)) +. 1e-9);
    qcheck ~name:"Lemma 2a: |(C(t2)-t2)-(C(t1)-t1)| <= rho |t2-t1|"
      gen_profile_and_times (fun (seed, t1, t2) ->
        let c = make_clock seed in
        Float.abs (Hw.time c t2 -. t2 -. (Hw.time c t1 -. t1))
        <= (rho *. (t2 -. t1)) +. 1e-9);
    qcheck ~name:"Lemma 2b: two clocks diverge at most 2 rho |t2-t1|"
      gen_profile_and_times (fun (seed, t1, t2) ->
        let c = make_clock seed and d = make_clock (seed + 1) in
        let diff tm = Hw.time c tm -. Hw.time d tm in
        Float.abs (diff t2 -. diff t1) <= (2. *. rho *. (t2 -. t1)) +. 1e-9);
  ]

let lemma3_tests =
  [
    qcheck ~count:300
      ~name:"Lemma 3: close inverse clocks give close forward clocks"
      gen_profile_and_times
      (fun (seed, t1, t2) ->
        ignore t1;
        ignore t2;
        (* Two clocks whose inverses agree within alpha on [T1, T2] must
           have forward readings within (1+rho) alpha on the corresponding
           real interval. *)
        let c = make_clock seed and d = make_clock (seed + 7) in
        let v1 = 10. and v2 = 30. in
        let alpha =
          let worst = ref 0. in
          let steps = 50 in
          for i = 0 to steps do
            let v = v1 +. ((v2 -. v1) *. float_of_int i /. float_of_int steps) in
            worst := Float.max !worst (Float.abs (Hw.inverse c v -. Hw.inverse d v))
          done;
          !worst +. 1e-9
        in
        let lo = Float.min (Hw.inverse c v1) (Hw.inverse d v1) in
        let hi = Float.max (Hw.inverse c v2) (Hw.inverse d v2) in
        let ok = ref true in
        let steps = 50 in
        for i = 0 to steps do
          let t = lo +. ((hi -. lo) *. float_of_int i /. float_of_int steps) in
          if t >= lo && t <= hi then
            if Float.abs (Hw.time c t -. Hw.time d t) > ((1. +. rho) *. alpha) +. 1e-6
            then ok := false
        done;
        !ok);
  ]

let logical_tests =
  [
    t "local_time adds corr" (fun () ->
        let c = Hw.create ~offset:1. Drift.perfect in
        check_float "local" 8.5 (Lc.local_time c ~corr:2.5 5.));
    t "real_time_of_local inverts local_time" (fun () ->
        let c = Hw.create ~offset:1. (Drift.constant ~rate:1.0001) in
        let corr = 0.3 in
        let v = Lc.local_time c ~corr 7. in
        check_float_tol 1e-9 "roundtrip" 7. (Lc.real_time_of_local c ~corr v));
    t "timer_phys_target" (fun () ->
        check_float "target" 9.7 (Lc.timer_phys_target ~corr:0.3 10.));
  ]

let suite = drift_tests @ hw_tests @ lemma3_tests @ logical_tests
