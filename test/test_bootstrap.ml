(* Tests for the establishment-to-maintenance switchover (Section 9.2's
   "two modes of operation") and the stale-timer robustness it relies on. *)

module Automaton = Csync_process.Automaton
module Cluster = Csync_process.Cluster
module Hw = Csync_clock.Hardware_clock
module Drift = Csync_clock.Drift
module Params = Csync_core.Params
module Est = Csync_core.Establishment
module Maint = Csync_core.Maintenance
module Boot = Csync_core.Bootstrap
module Rng = Csync_sim.Rng
open Helpers

let t name f = Alcotest.test_case name `Quick f

let p = params ()

let unit_tests =
  [
    t "config validation" (fun () ->
        check_raises_invalid "round" (fun () ->
            ignore
              (Boot.config ~switch_round:0 ~est:(Est.config p)
                 ~maint:(Maint.config p) ()));
        check_raises_invalid "variants" (fun () ->
            ignore
              (Boot.config ~est:(Est.config p)
                 ~maint:(Maint.config ~exchanges:2 p) ())));
    t "switch_round_for_spread scales logarithmically" (fun () ->
        let r10 = Boot.switch_round_for_spread p ~initial_spread:10. in
        let r10k = Boot.switch_round_for_spread p ~initial_spread:10_000. in
        check_true "more rounds for wider spread" (r10k > r10);
        check_true "roughly +10 halvings" (r10k - r10 <= 12));
    t "stale timers in maintenance Update phase are ignored" (fun () ->
        (* The hazard the switchover exposed: an old timer must not trigger
           an early (empty) update. *)
        let cfg = Maint.config p in
        let auto = Maint.automaton ~self_hint:0 cfg in
        let s, _ =
          auto.Automaton.handle ~self:0 ~phys:p.Params.t0 Automaton.Start
            auto.Automaton.initial
        in
        check_true "in update phase" (Maint.current_phase s = Maint.Update);
        let s', actions =
          auto.Automaton.handle ~self:0 ~phys:(p.Params.t0 +. 1e-4)
            (Automaton.Timer 0.123) s
        in
        check_true "ignored" (actions = []);
        check_true "phase unchanged" (Maint.current_phase s' = Maint.Update);
        check_int "no update happened" 0 (List.length (Maint.history s')));
  ]

(* End-to-end: arbitrary clocks -> establishment -> switch -> maintenance. *)
let run_bootstrap ~seed ~spread =
  let n = p.Params.n in
  let switch_round = Boot.switch_round_for_spread p ~initial_spread:spread in
  let rng = Rng.create seed in
  let readers = Hashtbl.create n in
  let procs =
    Array.init n (fun pid ->
        let cfg =
          Boot.config ~switch_round ~est:(Est.config p) ~maint:(Maint.config p) ()
        in
        let proc, reader = Boot.create ~self:pid cfg in
        Hashtbl.add readers pid reader;
        proc)
  in
  let clocks =
    Array.init n (fun pid ->
        let v = if pid = 0 then 0. else Rng.uniform rng ~lo:0. ~hi:spread in
        Hw.create ~t0:0. ~offset:v
          (Drift.random ~rng ~rho:p.Params.rho ~segment_duration:0.3 ~horizon:60.))
  in
  let delay =
    Csync_net.Delay.uniform ~delta:p.Params.delta ~eps:p.Params.eps
      ~rng:(Rng.split rng)
  in
  let cluster = Cluster.create ~clocks ~delay ~procs () in
  for pid = 0 to n - 1 do
    Cluster.schedule_start cluster ~pid ~time:(0.001 +. (0.0001 *. float_of_int pid))
  done;
  Cluster.run_until cluster 5.0;
  let states = List.init n (fun pid -> (Hashtbl.find readers pid) ()) in
  let locals = List.init n (fun pid -> Cluster.local_time cluster pid) in
  (states, locals)

let rescue_tests =
  [
    t "grid rescue: f+1 identical Time values pull a straggler out" (fun () ->
        let cfg = Boot.config ~switch_round:50 ~est:(Est.config p) ~maint:(Maint.config p) () in
        let auto = Boot.automaton ~self_hint:0 cfg in
        let s, _ =
          auto.Automaton.handle ~self:0 ~phys:0. Automaton.Start
            auto.Automaton.initial
        in
        check_true "establishing" (Boot.mode s = Boot.Establishing);
        (* Identical grid values from f = 2 senders: not yet a quorum. *)
        let feed s (q, v) =
          fst (auto.Automaton.handle ~self:0 ~phys:1. (Automaton.Message (q, Est.Time v)) s)
        in
        let grid_v = 27.0 in
        let s = feed s (1, grid_v) in
        let s = feed s (2, grid_v) in
        check_true "still establishing" (Boot.mode s = Boot.Establishing);
        (* A third distinct sender completes the quorum. *)
        let s = feed s (3, grid_v) in
        check_true "rescuing" (Boot.mode s = Boot.Rescuing);
        (* Distinct establishment Time values must never trigger it. *)
        let auto2 = Boot.automaton ~self_hint:0 cfg in
        let s2, _ =
          auto2.Automaton.handle ~self:0 ~phys:0. Automaton.Start
            auto2.Automaton.initial
        in
        let s2 = feed s2 (1, 10.0) in
        let s2 = feed s2 (2, 10.1) in
        let s2 = feed s2 (3, 10.2) in
        check_true "no false rescue" (Boot.mode s2 = Boot.Establishing));
  ]

let e2e_tests =
  [
    t "cold boot from 50 s apart ends synchronized in maintenance mode" (fun () ->
        let states, locals = run_bootstrap ~seed:4 ~spread:50. in
        check_true "all switched"
          (List.for_all (fun s -> Boot.mode s = Boot.Switched) states);
        (* Everyone lands on the same maintenance grid; rescued stragglers
           may join one round later than the quorum switchers. *)
        let ks = List.filter_map Boot.maintenance_round_of states in
        let distinct = List.sort_uniq Int.compare ks in
        check_true "at most two adjacent grid rounds"
          (List.length distinct <= 2
           && List.nth distinct (List.length distinct - 1) - List.hd distinct <= 1);
        (* Several maintenance rounds must have completed. *)
        List.iter
          (fun s ->
            match Boot.maintenance_state s with
            | Some m ->
              check_true "progressed"
                (Maint.rounds_completed m > List.hd (List.sort Int.compare ks) + 3)
            | None -> Alcotest.fail "not in maintenance")
          states;
        let lo = List.fold_left Float.min (List.hd locals) locals in
        let hi = List.fold_left Float.max (List.hd locals) locals in
        check_true "skew within gamma" (hi -. lo <= Params.gamma p));
    t "works across seeds" (fun () ->
        List.iter
          (fun seed ->
            let states, locals = run_bootstrap ~seed ~spread:20. in
            check_true "all switched"
              (List.for_all (fun s -> Boot.mode s = Boot.Switched) states);
            let lo = List.fold_left Float.min (List.hd locals) locals in
            let hi = List.fold_left Float.max (List.hd locals) locals in
            check_true
              (Printf.sprintf "seed %d skew %g" seed (hi -. lo))
              (hi -. lo <= Params.gamma p))
          [ 1; 2; 3; 5; 8 ]);
  ]

let suite = unit_tests @ rescue_tests @ e2e_tests
