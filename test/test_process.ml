(* Tests for the process/cluster runtime: automaton stepping, timers through
   logical clocks, the execution-model rules, and fault combinators. *)

module Automaton = Csync_process.Automaton
module Cluster = Csync_process.Cluster
module Fault = Csync_process.Fault
module Hw = Csync_clock.Hardware_clock
module Drift = Csync_clock.Drift
module Delay = Csync_net.Delay
module Rng = Csync_sim.Rng
open Helpers

let t name f = Alcotest.test_case name `Quick f

(* An automaton that logs every interrupt it receives. *)
let recorder () =
  {
    Automaton.name = "recorder";
    initial = [];
    handle = (fun ~self:_ ~phys interrupt log -> ((phys, interrupt) :: log, []));
    corr = (fun _ -> 0.);
  }

let perfect_clocks n = Array.init n (fun _ -> Hw.create Drift.perfect)

let cluster_of_procs ?(delay = Delay.constant 0.01) procs =
  Cluster.create ~clocks:(perfect_clocks (Array.length procs)) ~delay ~procs ()

let basic_tests =
  [
    t "start delivery steps the automaton" (fun () ->
        let proc, read = Cluster.make_proc (recorder ()) in
        let cluster = cluster_of_procs [| proc |] in
        Cluster.schedule_start cluster ~pid:0 ~time:1.;
        Cluster.run_until cluster 2.;
        match read () with
        | [ (phys, Automaton.Start) ] -> check_float "phys" 1. phys
        | _ -> Alcotest.fail "expected one START");
    t "messages carry sender and payload" (fun () ->
        let sender =
          Automaton.stateless ~name:"sender" (fun ~self:_ ~phys:_ -> function
            | Automaton.Start -> [ Automaton.Send (1, "ping"); Automaton.Broadcast "b" ]
            | _ -> [])
        in
        let proc0, _ = Cluster.make_proc sender in
        let proc1, read1 = Cluster.make_proc (recorder ()) in
        let cluster = cluster_of_procs [| proc0; proc1 |] in
        Cluster.schedule_start cluster ~pid:0 ~time:0.;
        Cluster.run_until cluster 1.;
        let msgs =
          List.filter_map
            (function _, Automaton.Message (src, m) -> Some (src, m) | _ -> None)
            (read1 ())
        in
        (* The log is newest-first: the broadcast copy was scheduled after
           the direct send, so it arrives second and is listed first. *)
        Alcotest.(check (list (pair int string)))
          "received"
          [ (0, "b"); (0, "ping") ]
          msgs);
    t "logical timer fires when logical clock reaches T" (fun () ->
        (* Clock rate 2, corr = 3: logical time L(t) = 2t + 3.  A timer for
           L = 13 must fire at real time 5. *)
        let auto =
          {
            Automaton.name = "timer-test";
            initial = [];
            handle =
              (fun ~self:_ ~phys interrupt log ->
                match interrupt with
                | Automaton.Start -> (log, [ Automaton.Set_timer_logical 13. ])
                | i -> ((phys, i) :: log, []));
            corr = (fun _ -> 3.);
          }
        in
        let proc, read = Cluster.make_proc auto in
        let cluster =
          Cluster.create
            ~clocks:[| Hw.create (Drift.constant ~rate:2.) |]
            ~delay:(Delay.constant 0.01) ~procs:[| proc |] ()
        in
        Cluster.schedule_start cluster ~pid:0 ~time:0.;
        Cluster.run_until cluster 10.;
        match read () with
        | [ (phys, Automaton.Timer tag) ] ->
          check_float "tag" 13. tag;
          (* physical clock reads 10 at real 5 *)
          check_float "phys at fire" 10. phys
        | _ -> Alcotest.fail "expected one timer");
    t "physical timer" (fun () ->
        let auto =
          Automaton.stateless ~name:"p" (fun ~self:_ ~phys:_ -> function
            | Automaton.Start -> [ Automaton.Set_timer_phys 4. ]
            | _ -> [])
        in
        let proc, _ = Cluster.make_proc auto in
        let cluster = cluster_of_procs [| proc |] in
        Cluster.schedule_start cluster ~pid:0 ~time:0.;
        Cluster.run_until cluster 3.;
        check_int "pending timer" 1 (Csync_sim.Engine.pending
          (Csync_net.Message_buffer.engine (Cluster.buffer cluster))));
    t "timer for the past is silently dropped" (fun () ->
        let auto =
          Automaton.stateless ~name:"p" (fun ~self:_ ~phys:_ -> function
            | Automaton.Start -> [ Automaton.Set_timer_phys (-1.) ]
            | _ -> [])
        in
        let proc, _ = Cluster.make_proc auto in
        let cluster = cluster_of_procs [| proc |] in
        Cluster.schedule_start cluster ~pid:0 ~time:1.;
        Cluster.run_until cluster 2.;
        check_int "nothing pending" 0
          (Csync_sim.Engine.pending
             (Csync_net.Message_buffer.engine (Cluster.buffer cluster))));
    t "local_time = phys + corr" (fun () ->
        let auto = { (recorder ()) with Automaton.corr = (fun _ -> 2.5) } in
        let proc, _ = Cluster.make_proc auto in
        let cluster = cluster_of_procs [| proc |] in
        Cluster.run_until cluster 4.;
        check_float "local" 6.5 (Cluster.local_time cluster 0);
        check_float "phys" 4. (Cluster.phys_time cluster 0);
        check_float "corr" 2.5 (Cluster.corr cluster 0));
    t "kill stops delivery; revive resumes" (fun () ->
        let proc, read = Cluster.make_proc (recorder ()) in
        let sender =
          Fault.periodic ~name:"ticker" ~first_phys:0.5 ~period_phys:1.
            (fun ~self:_ ~phys:_ ~count:_ -> [ Automaton.Send (0, ()) ])
          |> fst
        in
        let cluster = cluster_of_procs [| proc; sender |] in
        Cluster.schedule_start cluster ~pid:1 ~time:0.;
        Cluster.kill cluster 0;
        check_bool "dead" false (Cluster.is_alive cluster 0);
        Cluster.run_until cluster 2.;
        check_int "nothing received while dead" 0 (List.length (read ()));
        Cluster.revive cluster 0;
        Cluster.run_until cluster 4.;
        check_true "received after revive" (List.length (read ()) > 0));
    t "replace swaps the automaton" (fun () ->
        let proc, _ = Cluster.make_proc (recorder ()) in
        let cluster = cluster_of_procs [| proc |] in
        let proc2, read2 = Cluster.make_proc (recorder ()) in
        Cluster.replace cluster 0 proc2;
        Cluster.schedule_start cluster ~pid:0 ~time:1.;
        Cluster.run_until cluster 2.;
        check_int "new automaton got it" 1 (List.length (read2 ())));
    t "delivery hooks fire in order" (fun () ->
        let proc, _ = Cluster.make_proc (recorder ()) in
        let cluster = cluster_of_procs [| proc |] in
        let calls = ref [] in
        Cluster.add_delivery_hook cluster (fun _ pid _ -> calls := pid :: !calls);
        Cluster.schedule_start cluster ~pid:0 ~time:0.;
        Cluster.run_until cluster 1.;
        Alcotest.(check (list int)) "hook" [ 0 ] !calls);
    t "many hooks fire in registration order" (fun () ->
        (* Exercises the doubling-array registration path well past its
           initial capacity. *)
        let proc, _ = Cluster.make_proc (recorder ()) in
        let cluster = cluster_of_procs [| proc |] in
        let calls = ref [] in
        for i = 0 to 19 do
          Cluster.add_delivery_hook cluster (fun _ _ _ -> calls := i :: !calls)
        done;
        Cluster.schedule_start cluster ~pid:0 ~time:0.;
        Cluster.run_until cluster 1.;
        Alcotest.(check (list int))
          "order" (List.init 20 (fun i -> i))
          (List.rev !calls));
    t "schedule_starts_at_logical places START at c_p(T0)" (fun () ->
        (* Clock reads T0 = 10 at real time 2 (offset 8, rate 1). *)
        let proc, read = Cluster.make_proc (recorder ()) in
        let cluster =
          Cluster.create
            ~clocks:[| Hw.create ~offset:8. Drift.perfect |]
            ~delay:(Delay.constant 0.01) ~procs:[| proc |] ()
        in
        Cluster.schedule_starts_at_logical cluster ~t0:10. ~corrs:[| 0. |];
        Cluster.run_until cluster 5.;
        match read () with
        | [ (phys, Automaton.Start) ] -> check_float "phys = T0" 10. phys
        | _ -> Alcotest.fail "expected START");
    t "cluster validates arguments" (fun () ->
        let proc, _ = Cluster.make_proc (recorder ()) in
        check_raises_invalid "length mismatch" (fun () ->
            ignore
              (Cluster.create ~clocks:(perfect_clocks 2)
                 ~delay:(Delay.constant 0.01) ~procs:[| proc |] ()));
        let cluster = cluster_of_procs [| proc |] in
        check_raises_invalid "pid range" (fun () -> Cluster.kill cluster 5));
  ]

let fault_tests =
  [
    t "silent never acts" (fun () ->
        let proc, _ = Fault.silent () in
        let cluster = cluster_of_procs [| proc |] in
        Cluster.schedule_start cluster ~pid:0 ~time:0.;
        Cluster.run_until cluster 5.;
        check_int "no messages" 0 (Cluster.messages_sent cluster));
    t "periodic fires on its physical clock" (fun () ->
        let proc, count =
          Fault.periodic ~name:"tick" ~first_phys:1. ~period_phys:2.
            (fun ~self:_ ~phys:_ ~count:_ -> [])
        in
        let cluster = cluster_of_procs [| proc |] in
        Cluster.schedule_start cluster ~pid:0 ~time:0.;
        Cluster.run_until cluster 6.;
        (* fires at 1, 3, 5 *)
        check_int "fired thrice" 3 (count ()));
    t "periodic validates period" (fun () ->
        check_raises_invalid "period" (fun () ->
            ignore
              (Fault.periodic ~name:"x" ~first_phys:0. ~period_phys:0.
                 (fun ~self:_ ~phys:_ ~count:_ -> []))));
    t "crash_at stops reacting" (fun () ->
        let auto =
          Fault.crash_at ~phys:2.
            {
              Automaton.name = "echo";
              initial = 0;
              handle = (fun ~self:_ ~phys:_ _ n -> (n + 1, []));
              corr = (fun _ -> 0.);
            }
        in
        let proc, read = Cluster.make_proc auto in
        let ticker =
          fst
            (Fault.periodic ~name:"tick" ~first_phys:0.5 ~period_phys:1.
               (fun ~self:_ ~phys:_ ~count:_ -> [ Automaton.Send (0, ()) ]))
        in
        let cluster = cluster_of_procs [| proc; ticker |] in
        Cluster.schedule_start cluster ~pid:1 ~time:0.;
        Cluster.run_until cluster 6.;
        (* ticks at ~0.51, 1.51 counted; later ones ignored *)
        check_int "stopped at 2" 2 (read ()));
    t "receive_omission drops everything at p=1" (fun () ->
        let auto =
          Fault.receive_omission ~rng:(Rng.create 1) ~drop_probability:1.
            {
              Automaton.name = "count";
              initial = 0;
              handle =
                (fun ~self:_ ~phys:_ i n ->
                  match i with Automaton.Message _ -> (n + 1, []) | _ -> (n, []));
              corr = (fun _ -> 0.);
            }
        in
        let proc, read = Cluster.make_proc auto in
        let ticker =
          fst
            (Fault.periodic ~name:"tick" ~first_phys:0.5 ~period_phys:1.
               (fun ~self:_ ~phys:_ ~count:_ -> [ Automaton.Send (0, ()) ]))
        in
        let cluster = cluster_of_procs [| proc; ticker |] in
        Cluster.schedule_start cluster ~pid:1 ~time:0.;
        Cluster.run_until cluster 5.;
        check_int "all dropped" 0 (read ()));
    t "send_omission drops everything at p=1" (fun () ->
        let auto =
          Fault.send_omission ~rng:(Rng.create 1) ~drop_probability:1.
            (Automaton.stateless ~name:"b" (fun ~self:_ ~phys:_ -> function
               | Automaton.Start -> [ Automaton.Broadcast "x"; Automaton.Send (0, "y") ]
               | _ -> []))
        in
        let proc, _ = Cluster.make_proc auto in
        let cluster = cluster_of_procs [| proc |] in
        Cluster.schedule_start cluster ~pid:0 ~time:0.;
        Cluster.run_until cluster 1.;
        check_int "nothing sent" 0 (Cluster.messages_sent cluster));
    t "broadcast_to_sends expands" (fun () ->
        let sends = Fault.broadcast_to_sends ~n:3 (Automaton.Broadcast "m") in
        check_int "three sends" 3 (List.length sends);
        let other = Fault.broadcast_to_sends ~n:3 (Automaton.Set_timer_phys 1.) in
        check_int "identity" 1 (List.length other));
    t "omission probability validation" (fun () ->
        check_raises_invalid "p" (fun () ->
            ignore
              (Fault.receive_omission ~rng:(Rng.create 1) ~drop_probability:2.
                 (recorder ()))));
    t "receive_omission drop rate converges to the probability" (fun () ->
        let counter =
          {
            Automaton.name = "count";
            initial = 0;
            handle =
              (fun ~self:_ ~phys:_ i n ->
                match i with Automaton.Message _ -> (n + 1, []) | _ -> (n, []));
            corr = (fun _ -> 0.);
          }
        in
        List.iter
          (fun prob ->
            let auto =
              Fault.receive_omission ~rng:(Rng.create 7) ~drop_probability:prob
                counter
            in
            let draws = 2000 in
            let st = ref auto.Automaton.initial in
            for i = 1 to draws do
              let s, _ =
                auto.Automaton.handle ~self:0 ~phys:(float_of_int i)
                  (Automaton.Message (1, ())) !st
              in
              st := s
            done;
            let observed =
              1. -. (float_of_int !st /. float_of_int draws)
            in
            check_true
              (Printf.sprintf "p=%.2f observed %.3f" prob observed)
              (Float.abs (observed -. prob) < 0.05))
          [ 0.1; 0.3; 0.7 ]);
    t "receive_omission never drops START or TIMER" (fun () ->
        let auto =
          Fault.receive_omission ~rng:(Rng.create 1) ~drop_probability:1.
            (recorder ())
        in
        let s = auto.Automaton.initial in
        let s, _ = auto.Automaton.handle ~self:0 ~phys:0. Automaton.Start s in
        let s, _ = auto.Automaton.handle ~self:0 ~phys:1. (Automaton.Timer 1.) s in
        let s, _ = auto.Automaton.handle ~self:0 ~phys:2. (Automaton.Message (1, ())) s in
        check_int "start and timer got through, message did not" 2 (List.length s));
    t "send_omission drop rate converges to the probability" (fun () ->
        let chatty =
          Automaton.stateless ~name:"chat" (fun ~self:_ ~phys:_ -> function
            | Automaton.Timer _ -> [ Automaton.Send (0, "m") ]
            | _ -> [])
        in
        List.iter
          (fun prob ->
            let auto =
              Fault.send_omission ~rng:(Rng.create 13) ~drop_probability:prob
                chatty
            in
            let draws = 2000 in
            let sent = ref 0 in
            let st = ref auto.Automaton.initial in
            for i = 1 to draws do
              let s, actions =
                auto.Automaton.handle ~self:1 ~phys:(float_of_int i)
                  (Automaton.Timer (float_of_int i)) !st
              in
              st := s;
              List.iter
                (function Automaton.Send _ -> incr sent | _ -> ())
                actions
            done;
            let observed = 1. -. (float_of_int !sent /. float_of_int draws) in
            check_true
              (Printf.sprintf "p=%.2f observed %.3f" prob observed)
              (Float.abs (observed -. prob) < 0.05))
          [ 0.2; 0.5; 0.9 ]);
    t "send_omission never suppresses timer-setting actions" (fun () ->
        let auto =
          Fault.send_omission ~rng:(Rng.create 1) ~drop_probability:1.
            (Automaton.stateless ~name:"b" (fun ~self:_ ~phys:_ -> function
               | Automaton.Start ->
                 [
                   Automaton.Set_timer_phys 1.;
                   Automaton.Broadcast "x";
                   Automaton.Send (0, "y");
                   Automaton.Set_timer_logical 2.;
                 ]
               | _ -> []))
        in
        let _, actions =
          auto.Automaton.handle ~self:0 ~phys:0. Automaton.Start
            auto.Automaton.initial
        in
        match actions with
        | [ Automaton.Set_timer_phys t1; Automaton.Set_timer_logical t2 ] ->
          check_float "phys" 1. t1;
          check_float "logical" 2. t2
        | _ -> Alcotest.fail "expected exactly the two timer actions");
    t "crash_at is permanently silent afterwards" (fun () ->
        let auto =
          Fault.crash_at ~phys:2.
            (Automaton.stateless ~name:"echo" (fun ~self:_ ~phys:_ -> function
               | Automaton.Message (q, ()) -> [ Automaton.Send (q, ()) ]
               | _ -> []))
        in
        let st = ref auto.Automaton.initial in
        let outputs = ref 0 in
        for i = 1 to 100 do
          let s, actions =
            auto.Automaton.handle ~self:0 ~phys:(float_of_int i)
              (Automaton.Message (1, ())) !st
          in
          st := s;
          outputs := !outputs + List.length actions
        done;
        (* only the pre-crash interrupt (phys 1) produced output *)
        check_int "one echo then silence" 1 !outputs);
    t "crash_recover: crash, silence, then the recovery automaton boots"
      (fun () ->
        let echo =
          Automaton.stateless ~name:"echo" (fun ~self:_ ~phys:_ -> function
            | Automaton.Message (q, ()) -> [ Automaton.Send (q, ()) ]
            | _ -> [])
        in
        let auto =
          Fault.crash_recover ~crash_phys:2.5 ~recover_phys:4.5
            ~recovery:(recorder ()) echo
        in
        let st = ref auto.Automaton.initial in
        let outputs = ref 0 in
        let feed phys i =
          let s, actions = auto.Automaton.handle ~self:0 ~phys i !st in
          st := s;
          outputs := !outputs + List.length actions
        in
        check_true "running"
          (Fault.lifecycle_phase !st = `Running);
        feed 1. (Automaton.Message (1, ()));
        check_int "echoed while healthy" 1 !outputs;
        feed 3. (Automaton.Message (1, ()));
        check_true "down" (Fault.lifecycle_phase !st = `Down);
        check_int "silent while down" 1 !outputs;
        feed 5. (Automaton.Message (2, ()));
        check_true "recovered" (Fault.lifecycle_phase !st = `Recovered);
        (match Fault.recovered_state !st with
        | Some log ->
          (* The recovery automaton was booted with a fresh START and then
             saw the waking message replayed into it. *)
          check_true "saw start"
            (List.exists (fun (_, i) -> i = Automaton.Start) log);
          check_true "waking message replayed"
            (List.exists (fun (_, i) -> i = Automaton.Message (2, ())) log)
        | None -> Alcotest.fail "expected a recovered state");
        check_raises_invalid "ordering" (fun () ->
            ignore
              (Fault.crash_recover ~crash_phys:2. ~recover_phys:2.
                 ~recovery:(recorder ()) echo)));
  ]

let suite = basic_tests @ fault_tests
