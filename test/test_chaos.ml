(* Tests for the chaos layer: fault-plan validation and blame accounting,
   the injector's compilation of plans into link tampering, clock
   disturbances, the seeded plan generator, and the campaign acceptance
   property: over seeded random fault plans, the nonfaulty processes keep
   agreement within gamma and crashed-then-recovered processes
   reintegrate. *)

module Plan = Csync_chaos.Plan
module Injector = Csync_chaos.Injector
module Gen = Csync_chaos.Gen
module Rng = Csync_sim.Rng
module Mb = Csync_net.Message_buffer
module Drift = Csync_clock.Drift
module Hw = Csync_clock.Hardware_clock
module Params = Csync_core.Params
module RC = Csync_harness.Runner_chaos
open Helpers

let t name f = Alcotest.test_case name `Quick f

let p = params ()

let iv a b = Plan.interval ~from_time:a ~until_time:b

let plan_tests =
  [
    t "interval rejects emptiness" (fun () ->
        check_raises_invalid "empty" (fun () -> ignore (iv 2. 2.));
        check_raises_invalid "backwards" (fun () -> ignore (iv 2. 1.));
        check_true "half-open start" (Plan.in_interval (iv 1. 2.) ~time:1.);
        check_true "half-open end" (not (Plan.in_interval (iv 1. 2.) ~time:2.)));
    t "validate catches malformed events" (fun () ->
        let v plan = Plan.validate ~n:7 plan in
        check_raises_invalid "pid range" (fun () ->
            v [ Plan.Crash { pid = 7; at = 1. } ]);
        check_raises_invalid "drop probability" (fun () ->
            v [ Plan.Link { src = 0; dst = 1; fault = Plan.Drop 1.5; over = iv 1. 2. } ]);
        check_raises_invalid "overlapping partition" (fun () ->
            v [ Plan.Partition { left = [ 0; 1 ]; right = [ 1; 2 ]; over = iv 1. 2. } ]);
        check_raises_invalid "recover without crash" (fun () ->
            v [ Plan.Recover { pid = 2; at = 3. } ]);
        check_raises_invalid "recover before crash" (fun () ->
            v [ Plan.Crash { pid = 2; at = 3. }; Plan.Recover { pid = 2; at = 2. } ]);
        (* a well-formed plan passes *)
        v
          [
            Plan.Crash { pid = 2; at = 3. };
            Plan.Recover { pid = 2; at = 4. };
            Plan.Link { src = 0; dst = 1; fault = Plan.Corrupt 0.5; over = iv 1. 2. };
          ]);
    t "link faults blame the sender, with settle" (fun () ->
        let plan =
          [ Plan.Link { src = 1; dst = 4; fault = Plan.Drop 1.; over = iv 1. 2. } ]
        in
        check_true "before" (Plan.suspects_at plan ~settle:0.5 ~time:0.5 = []);
        check_true "during" (Plan.suspects_at plan ~settle:0.5 ~time:1.5 = [ 1 ]);
        check_true "settling" (Plan.suspects_at plan ~settle:0.5 ~time:2.4 = [ 1 ]);
        check_true "after" (Plan.suspects_at plan ~settle:0.5 ~time:2.6 = []));
    t "a partition blames its smaller side" (fun () ->
        let plan =
          [
            Plan.Partition
              { left = [ 5 ]; right = [ 0; 1; 2; 3; 4; 6 ]; over = iv 1. 2. };
          ]
        in
        check_true "blames 5" (Plan.suspects_at plan ~settle:0. ~time:1.5 = [ 5 ]);
        check_int "peak" 1 (Plan.max_concurrent_suspects plan ~settle:0. ~horizon:3.));
    t "an unrecovered crash is suspect forever" (fun () ->
        let plan = [ Plan.Crash { pid = 3; at = 1. } ] in
        check_true "late" (Plan.suspects_at plan ~settle:0.5 ~time:100. = [ 3 ]);
        check_true "schedule" (Plan.crash_schedule plan = [ (3, 1., None) ]));
    t "crash schedule pairs recoveries" (fun () ->
        let plan =
          [ Plan.Crash { pid = 3; at = 1. }; Plan.Recover { pid = 3; at = 2.5 } ]
        in
        check_true "paired" (Plan.crash_schedule plan = [ (3, 1., Some 2.5) ]);
        check_true "suspect while down"
          (Plan.suspects_at plan ~settle:0.5 ~time:2. = [ 3 ]);
        check_true "clears after settle"
          (Plan.suspects_at plan ~settle:0.5 ~time:3.1 = []));
    t "repeated crash/recover cycles validate; malformed lifecycles don't"
      (fun () ->
        let v plan = Plan.validate ~n:7 plan in
        (* Two full cycles on one process are a legitimate flaky machine. *)
        v
          [
            Plan.Crash { pid = 1; at = 1. };
            Plan.Recover { pid = 1; at = 2. };
            Plan.Crash { pid = 1; at = 3. };
            Plan.Recover { pid = 1; at = 4. };
          ];
        check_raises_invalid "crash while down" (fun () ->
            v
              [
                Plan.Crash { pid = 1; at = 1. };
                Plan.Crash { pid = 1; at = 2. };
                Plan.Recover { pid = 1; at = 3. };
              ]);
        check_raises_invalid "coincident crash/recover" (fun () ->
            v
              [
                Plan.Crash { pid = 1; at = 2. };
                Plan.Recover { pid = 1; at = 2. };
              ]);
        check_raises_invalid "second recover without crash" (fun () ->
            v
              [
                Plan.Crash { pid = 1; at = 1. };
                Plan.Recover { pid = 1; at = 2. };
                Plan.Recover { pid = 1; at = 3. };
              ]));
    t "crash schedule pairs each cycle's recovery" (fun () ->
        let plan =
          [
            Plan.Crash { pid = 3; at = 1. };
            Plan.Recover { pid = 3; at = 2. };
            Plan.Crash { pid = 3; at = 5. };
          ]
        in
        check_true "cycles paired in order"
          (Plan.crash_schedule plan = [ (3, 1., Some 2.); (3, 5., None) ]));
    t "state corruption validates pid, time, severity, and lifecycle"
      (fun () ->
        let v plan = Plan.validate ~n:7 plan in
        v [ Plan.State_corrupt { pid = 2; at = 1.; severity = 0.5 } ];
        check_raises_invalid "severity zero" (fun () ->
            v [ Plan.State_corrupt { pid = 2; at = 1.; severity = 0. } ]);
        check_raises_invalid "severity above one" (fun () ->
            v [ Plan.State_corrupt { pid = 2; at = 1.; severity = 1.5 } ]);
        check_raises_invalid "negative time" (fun () ->
            v [ Plan.State_corrupt { pid = 2; at = -1.; severity = 0.5 } ]);
        check_raises_invalid "corrupting a crashing process" (fun () ->
            v
              [
                Plan.Crash { pid = 2; at = 1. };
                Plan.Recover { pid = 2; at = 2. };
                Plan.State_corrupt { pid = 2; at = 4.; severity = 0.5 };
              ]));
    t "state corruption blames the victim until readmission + settle"
      (fun () ->
        let plan =
          [ Plan.State_corrupt { pid = 2; at = 10.; severity = 0.5 } ]
        in
        let at ?readmitted time =
          Plan.suspects_at ?readmitted plan ~settle:1. ~time
        in
        (* Without a readmission the wrapper never vouched for the victim:
           suspect from the corruption instant onward. *)
        check_true "clean before the hit" (at 9.99 = []);
        check_true "suspect at the hit (closed edge)" (at 10. = [ 2 ]);
        check_true "suspect forever without readmission" (at 1000. = [ 2 ]);
        (* A readmission at 12 closes the window at 13 (settle 1). *)
        let r = [ (2, 12.) ] in
        check_true "still suspect while settling"
          (at ~readmitted:r 12.99 = [ 2 ]);
        check_true "clean at readmit + settle (open edge)"
          (at ~readmitted:r 13.0 = []);
        (* Only readmissions strictly after the corruption count, and the
           earliest such one wins. *)
        check_true "stale readmission ignored"
          (at ~readmitted:[ (2, 9.) ] 1000. = [ 2 ]);
        check_true "earliest later readmission wins"
          (at ~readmitted:[ (2, 50.); (2, 12.) ] 13.0 = []);
        check_true "other pids' readmissions irrelevant"
          (at ~readmitted:[ (3, 12.) ] 1000. = [ 2 ]));
    t "describe summarizes" (fun () ->
        let plan =
          [
            Plan.Crash { pid = 3; at = 1. };
            Plan.Recover { pid = 3; at = 2. };
            Plan.Clock_step { pid = 1; at = 1.; amount = 1e-3 };
          ]
        in
        check_true "mentions crash" (contains (Plan.describe plan) "crash");
        check_true "mentions step" (contains (Plan.describe plan) "step"));
  ]

(* The injector compiles a plan into a Message_buffer tamper: a function of
   (now, src, dst, payload) returning delivery fates.  Drive it directly. *)
let injector_tests =
  let deliver_plain fates =
    match fates with
    | [ { Mb.payload; extra_delay } ] -> Some (payload, extra_delay)
    | _ -> None
  in
  let tamper ?(corrupt = fun _ x -> x) plan =
    let stats = Injector.stats () in
    (Injector.tamper ~plan ~rng:(Rng.create 11) ~corrupt ~stats, stats)
  in
  [
    t "drop at probability 1 kills the link, only inside the window" (fun () ->
        let plan =
          [ Plan.Link { src = 0; dst = 1; fault = Plan.Drop 1.; over = iv 1. 2. } ]
        in
        let tam, stats = tamper plan in
        check_true "dropped" (tam ~now:1.5 ~src:0 ~dst:1 42. = []);
        check_true "before window"
          (deliver_plain (tam ~now:0.5 ~src:0 ~dst:1 42.) = Some (42., 0.));
        check_true "other link"
          (deliver_plain (tam ~now:1.5 ~src:0 ~dst:2 42.) = Some (42., 0.));
        check_true "reverse direction"
          (deliver_plain (tam ~now:1.5 ~src:1 ~dst:0 42.) = Some (42., 0.));
        check_int "counted" 1 stats.Injector.dropped);
    t "duplicate at probability 1 sends two copies" (fun () ->
        let plan =
          [ Plan.Link { src = 2; dst = 5; fault = Plan.Duplicate 1.; over = iv 0. 9. } ]
        in
        let tam, stats = tamper plan in
        (match tam ~now:1. ~src:2 ~dst:5 7. with
        | [ a; b ] ->
          check_float "copy a" 7. a.Mb.payload;
          check_float "copy b" 7. b.Mb.payload
        | _ -> Alcotest.fail "expected two fates");
        check_int "counted" 1 stats.Injector.duplicated);
    t "reorder adds bounded extra delay" (fun () ->
        let jitter = 3e-4 in
        let plan =
          [ Plan.Link { src = 0; dst = 1; fault = Plan.Reorder jitter; over = iv 0. 9. } ]
        in
        let tam, stats = tamper plan in
        for _ = 1 to 50 do
          match tam ~now:1. ~src:0 ~dst:1 0. with
          | [ { Mb.extra_delay; _ } ] ->
            check_true "nonnegative" (extra_delay >= 0.);
            check_true "bounded" (extra_delay <= jitter)
          | _ -> Alcotest.fail "expected one fate"
        done;
        check_true "counted" (stats.Injector.delayed > 0));
    t "corrupt mangles the payload via the supplied function" (fun () ->
        let plan =
          [ Plan.Link { src = 0; dst = 1; fault = Plan.Corrupt 1.; over = iv 0. 9. } ]
        in
        let tam, stats = tamper ~corrupt:(fun _ x -> x +. 1000.) plan in
        check_true "mangled"
          (deliver_plain (tam ~now:1. ~src:0 ~dst:1 1.) = Some (1001., 0.));
        check_int "counted" 1 stats.Injector.corrupted);
    t "a partition cuts both directions, inside links survive" (fun () ->
        let plan =
          [ Plan.Partition { left = [ 0; 1 ]; right = [ 2; 3; 4; 5; 6 ]; over = iv 1. 2. } ]
        in
        let tam, stats = tamper plan in
        check_true "left to right" (tam ~now:1.5 ~src:0 ~dst:4 0. = []);
        check_true "right to left" (tam ~now:1.5 ~src:4 ~dst:0 0. = []);
        check_true "within left"
          (deliver_plain (tam ~now:1.5 ~src:0 ~dst:1 0.) <> None);
        check_true "within right"
          (deliver_plain (tam ~now:1.5 ~src:2 ~dst:6 0.) <> None);
        check_true "after heal"
          (deliver_plain (tam ~now:2.5 ~src:0 ~dst:4 0.) <> None);
        check_int "counted" 2 stats.Injector.partitioned);
    t "live filter: partitions and drops, receive side" (fun () ->
        let plan =
          [
            Plan.Partition { left = [ 3 ]; right = [ 0; 1; 2; 4; 5; 6 ]; over = iv 1. 2. };
            Plan.Link { src = 2; dst = 0; fault = Plan.Duplicate 1.; over = iv 0. 9. };
          ]
        in
        let stats = Injector.stats () in
        let link =
          Injector.live_link ~plan ~rng:(Rng.create 3) ~stats ~self:0 ~epoch:100.
        in
        check_true "cut peer dropped"
          (link ~now:101.5 ~dir:`Recv ~peer:3 = `Drop);
        check_true "cut healed" (link ~now:102.5 ~dir:`Recv ~peer:3 = `Deliver);
        check_true "duplicated" (link ~now:101.5 ~dir:`Recv ~peer:2 = `Duplicate);
        check_true "clean peer" (link ~now:101.5 ~dir:`Recv ~peer:5 = `Deliver));
    t "corrupt_float actually mangles" (fun () ->
        let rng = Rng.create 9 in
        let changed = ref 0 in
        for _ = 1 to 100 do
          let v = Injector.corrupt_float rng 1.25 in
          if v <> 1.25 then incr changed
        done;
        check_true "mostly different" (!changed > 90));
  ]

let disturbance_tests =
  [
    t "a step accumulates exactly its amount" (fun () ->
        let base = Drift.perfect in
        let stepped =
          Drift.disturb base ~horizon:10. [ Drift.Step { at = 1.; amount = 5e-4 } ]
        in
        let c = Hw.create stepped in
        check_float_tol 1e-12 "before" 0.5 (Hw.time c 0.5);
        check_float_tol 1e-9 "after" (8. +. 5e-4) (Hw.time c 8.);
        check_true "not rho-bounded while stepping"
          (not (Drift.is_rho_bounded ~rho:1e-6 stepped)));
    t "a backward step accumulates its negative amount" (fun () ->
        let stepped =
          Drift.disturb Drift.perfect ~horizon:10.
            [ Drift.Step { at = 2.; amount = -7e-4 } ]
        in
        let c = Hw.create stepped in
        check_float_tol 1e-9 "after" (9. -. 7e-4) (Hw.time c 9.));
    t "a rate excursion accumulates (factor - 1) x duration" (fun () ->
        let scaled =
          Drift.disturb Drift.perfect ~horizon:10.
            [ Drift.Rate_scale { from_time = 1.; until_time = 3.; factor = 1.001 } ]
        in
        let c = Hw.create scaled in
        check_float_tol 1e-9 "after" (8. +. (0.001 *. 2.)) (Hw.time c 8.));
    t "disturb validation" (fun () ->
        check_raises_invalid "zero factor" (fun () ->
            ignore
              (Drift.disturb Drift.perfect ~horizon:10.
                 [ Drift.Rate_scale { from_time = 1.; until_time = 2.; factor = 0. } ])));
  ]

let gen_tests =
  [
    t "generated plans validate and respect the fault budget" (fun () ->
        let window = iv (2. *. p.Params.big_p) (10. *. p.Params.big_p) in
        for seed = 0 to 49 do
          let spec =
            Gen.spec ~include_crash:(seed mod 2 = 0) ~params:p ~window ()
          in
          let plan = Gen.random ~rng:(Rng.create seed) spec in
          (* Gen.random validates internally; re-check the invariants here. *)
          Plan.validate ~n:p.Params.n plan;
          check_true "nonempty" (plan <> []);
          check_true "budget"
            (List.length (Plan.affected_pids plan) <= p.Params.f);
          if seed mod 2 = 0 then
            check_true "crash included" (Plan.crash_schedule plan <> [])
        done);
    t "generation is deterministic in the seed" (fun () ->
        let window = iv 1. 5. in
        let gen seed =
          Gen.random ~rng:(Rng.create seed) (Gen.spec ~params:p ~window ())
        in
        check_true "same seed, same plan" (gen 123 = gen 123);
        check_true "different seeds diverge somewhere"
          (List.exists (fun s -> gen s <> gen 123) [ 124; 125; 126 ]));
    t "max_victims caps the blast radius" (fun () ->
        let window = iv 1. 5. in
        for seed = 0 to 19 do
          let plan =
            Gen.random ~rng:(Rng.create seed)
              (Gen.spec ~max_victims:1 ~params:p ~window ())
          in
          check_int "one victim" 1 (List.length (Plan.affected_pids plan))
        done);
    t "include_corrupt forces a corruption; its default changes nothing"
      (fun () ->
        let window = iv (2. *. p.Params.big_p) (10. *. p.Params.big_p) in
        for seed = 0 to 19 do
          let gen spec = Gen.random ~rng:(Rng.create seed) spec in
          let plan =
            gen
              (Gen.spec ~include_crash:(seed mod 2 = 0) ~include_corrupt:true
                 ~params:p ~window ())
          in
          Plan.validate ~n:p.Params.n plan;
          (match Plan.corruption_schedule plan with
          | [] -> Alcotest.failf "seed %d: no corruption generated" seed
          | cs ->
            List.iter
              (fun (_, at, severity) ->
                check_true "severity in (0, 1]" (severity > 0. && severity <= 1.);
                check_true "inside the window"
                  (at >= window.Plan.from_time && at < window.Plan.until_time))
              cs);
          if seed mod 2 = 0 then
            check_true "crash still included" (Plan.crash_schedule plan <> []);
          (* The corrupt slot is gated, not interleaved: with it off, the
             generator draws the same stream as before the kind existed, so
             archived seeds keep their plans. *)
          check_true "default = explicitly off"
            (gen (Gen.spec ~params:p ~window ())
            = gen (Gen.spec ~include_corrupt:false ~params:p ~window ()))
        done);
  ]

(* The acceptance property for the whole chaos layer: across >= 20 seeded
   random fault plans, (a) whenever at most f processes are concurrently
   faulty the nonfaulty ones agree within gamma, and (b) every process
   that crashes and recovers reintegrates within the run. *)
let campaign_tests =
  [
    t "campaign: 24 seeded plans hold gamma and reintegrate" (fun () ->
        let seeds = List.init 24 (fun i -> 1000 + i) in
        let runs = RC.campaign ~params:p ~seeds () in
        check_int "one run per seed" 24 (List.length runs);
        List.iter
          (fun { RC.seed; plan; result } ->
            let label what =
              Printf.sprintf "seed %d (%s): %s" seed (Plan.describe plan) what
            in
            check_true (label "checked samples")
              (result.RC.checked_samples > 0);
            check_true (label "clean-set agreement within gamma")
              (RC.agreement_ok result);
            check_true (label "suspects within budget")
              (result.RC.max_suspects <= p.Params.f);
            check_true (label "recoveries rejoined") (RC.recoveries_ok result))
          runs;
        (* Even seeds force a crash/recover pair, so reintegration is
           genuinely exercised, not vacuously true. *)
        let reintegrations =
          List.fold_left
            (fun acc r -> acc + List.length r.RC.result.RC.recoveries)
            0 runs
        in
        check_true "reintegration exercised" (reintegrations >= 10));
    t "a hand-written kitchen-sink plan passes" (fun () ->
        let big_p = p.Params.big_p in
        let plan =
          [
            Plan.Crash { pid = 6; at = 2.2 *. big_p };
            Plan.Recover { pid = 6; at = 4.7 *. big_p };
            Plan.Link
              {
                src = 1;
                dst = 3;
                fault = Plan.Drop 1.;
                over = iv (6. *. big_p) (8. *. big_p);
              };
          ]
        in
        let r = RC.run (RC.make ~seed:5 ~rounds:24 ~params:p plan) in
        check_true "ok" (RC.ok r);
        match r.RC.recoveries with
        | [ v ] ->
          check_int "pid" 6 v.RC.pid;
          check_true "rejoined" (v.RC.join_round <> None)
        | _ -> Alcotest.fail "expected one recovery");
    t "a full-severity corruption breaches the wrapper and stabilizes"
      (fun () ->
        let big_p = p.Params.big_p in
        let plan =
          [ Plan.State_corrupt { pid = 2; at = 5. *. big_p; severity = 1. } ]
        in
        let r = RC.run (RC.make ~seed:11 ~rounds:24 ~params:p plan) in
        check_true "agreement over the clean set" (RC.agreement_ok r);
        check_int "injector applied it" 1 r.RC.stats.Injector.state_corrupted;
        (match r.RC.stabilizations with
        | [ s ] ->
          check_int "pid" 2 s.RC.corrupted_pid;
          check_int "applied" 1 s.RC.applied;
          check_true "full severity forces a detector breach"
            (s.RC.wrapper_breaches >= 1);
          check_true "re-admitted" (s.RC.readmitted_at <> None);
          check_true "healthy at end" (s.RC.healthy_at_end);
          check_true "stabilized within the derived bound"
            (s.RC.stabilized_in <= RC.stabilization_bound ~params:p)
        | _ -> Alcotest.fail "expected one stabilization");
        check_true "verdict agrees" (RC.stabilizations_ok ~params:p r));
    t "a mild corruption is absorbed without a breach" (fun () ->
        let big_p = p.Params.big_p in
        let plan =
          [ Plan.State_corrupt { pid = 4; at = 5. *. big_p; severity = 0.25 } ]
        in
        let r = RC.run (RC.make ~seed:7 ~rounds:24 ~params:p plan) in
        check_true "agreement over the clean set" (RC.agreement_ok r);
        match r.RC.stabilizations with
        | [ s ] ->
          check_int "no breach" 0 s.RC.wrapper_breaches;
          check_true "still re-admitted after the absorb window"
            (s.RC.readmitted_at <> None);
          check_true "healthy at end" s.RC.healthy_at_end;
          check_true "verdict agrees" (RC.stabilizations_ok ~params:p r)
        | _ -> Alcotest.fail "expected one stabilization");
    t "corrupt campaign: 8 seeded plans stabilize" (fun () ->
        let seeds = List.init 8 (fun i -> 2000 + i) in
        let runs = RC.campaign ~corrupt:true ~params:p ~seeds () in
        List.iter
          (fun { RC.seed; plan; result } ->
            let label what =
              Printf.sprintf "seed %d (%s): %s" seed (Plan.describe plan) what
            in
            check_true (label "plan includes a corruption")
              (Plan.corruption_schedule plan <> []);
            check_true (label "agreement") (RC.agreement_ok result);
            check_true (label "stabilized")
              (RC.stabilizations_ok ~params:p result);
            check_true (label "recoveries rejoined") (RC.recoveries_ok result))
          runs);
  ]

let sexp_tests =
  [
    t "plan sexp round-trips every event kind" (fun () ->
        let plan =
          [
            Plan.Partition
              { left = [ 0; 1 ]; right = [ 2; 3 ]; over = iv 1. 2. };
            Plan.Link
              { src = 0; dst = 3; fault = Plan.Drop 0.75; over = iv 0.5 1.5 };
            Plan.Link
              { src = 1; dst = 2; fault = Plan.Duplicate 0.25; over = iv 1. 4. };
            Plan.Link
              { src = 2; dst = 0; fault = Plan.Reorder 0.125; over = iv 2. 3. };
            Plan.Link
              { src = 3; dst = 1; fault = Plan.Corrupt 1.; over = iv 0.25 9. };
            Plan.Clock_step { pid = 1; at = 1.5; amount = -0.0625 };
            Plan.Rate_change { pid = 2; factor = 1.0009765625; over = iv 2. 5. };
            Plan.Crash { pid = 3; at = 6. };
            Plan.Recover { pid = 3; at = 7.5 };
            Plan.State_corrupt { pid = 0; at = 3.25; severity = 0.5 };
          ]
        in
        (match Plan.of_sexp_string (Plan.to_sexp_string plan) with
        | Error e -> Alcotest.failf "round-trip: %s" e
        | Ok plan' -> check_true "structurally equal" (plan = plan'));
        (* Dyadic times/probabilities round-trip bit-exactly via %h. *)
        match Plan.of_sexp_string (Plan.to_sexp_string plan) with
        | Ok plan' -> Plan.validate ~n:4 plan'
        | Error e -> Alcotest.failf "revalidate: %s" e);
    t "plan sexp rejects malformed input" (fun () ->
        (match Plan.of_sexp_string "(plan (crash (pid 1)" with
        | Ok _ -> Alcotest.fail "unbalanced parens accepted"
        | Error _ -> ());
        (match Plan.of_sexp_string "(schedule)" with
        | Ok _ -> Alcotest.fail "wrong head accepted"
        | Error _ -> ());
        match Plan.of_sexp_string "(plan (warp (pid 1) (at 2.0)))" with
        | Ok _ -> Alcotest.fail "unknown event accepted"
        | Error _ -> ());
    t "empty plan round-trips" (fun () ->
        match Plan.of_sexp_string (Plan.to_sexp_string []) with
        | Ok [] -> ()
        | Ok _ -> Alcotest.fail "expected empty plan"
        | Error e -> Alcotest.failf "empty: %s" e);
    (* Property version of the round-trip: random plans over every event
       constructor, with full-mantissa random floats (the %h codec must be
       bit-exact, not just close).  Parsing is structural, so the plans
       need not be semantically valid. *)
    (let open QCheck2.Gen in
     let pid = int_range 0 6 in
     let time = float_bound_inclusive 100. in
     let interval =
       map2
         (fun from w -> iv from (from +. 1e-6 +. w))
         time (float_bound_inclusive 10.)
     in
     let prob = float_range 1e-6 1.0 in
     let link_fault =
       oneof
         [
           map (fun x -> Plan.Drop x) prob;
           map (fun x -> Plan.Duplicate x) prob;
           map (fun x -> Plan.Reorder x) (float_range 1e-6 0.1);
           map (fun x -> Plan.Corrupt x) prob;
         ]
     in
     let event =
       oneof
         [
           map2
             (fun cut over ->
               let left = List.init cut Fun.id in
               let right = List.init (7 - cut) (fun i -> cut + i) in
               Plan.Partition { left; right; over })
             (int_range 1 6) interval;
           map2
             (fun (src, dst) (fault, over) -> Plan.Link { src; dst; fault; over })
             (pair pid pid)
             (pair link_fault interval);
           map2
             (fun (pid, at) amount -> Plan.Clock_step { pid; at; amount })
             (pair pid time)
             (float_range (-1.) 1.);
           map2
             (fun (pid, factor) over -> Plan.Rate_change { pid; factor; over })
             (pair pid (float_range 0.25 4.))
             interval;
           map2 (fun pid at -> Plan.Crash { pid; at }) pid time;
           map2 (fun pid at -> Plan.Recover { pid; at }) pid time;
           map2
             (fun (pid, at) severity -> Plan.State_corrupt { pid; at; severity })
             (pair pid time)
             (float_range 1e-6 1.0);
         ]
     in
     qcheck ~count:300
       ~name:"random plans round-trip through sexp bit-exactly"
       (list_size (int_range 0 8) event)
       (fun plan ->
         match Plan.of_sexp_string (Plan.to_sexp_string plan) with
         | Ok plan' -> plan = plan'
         | Error e -> QCheck2.Test.fail_reportf "parse failed: %s" e));
  ]

let suite =
  plan_tests @ injector_tests @ disturbance_tests @ gen_tests @ campaign_tests
  @ sexp_tests
