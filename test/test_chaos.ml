(* Tests for the chaos layer: fault-plan validation and blame accounting,
   the injector's compilation of plans into link tampering, clock
   disturbances, the seeded plan generator, and the campaign acceptance
   property: over seeded random fault plans, the nonfaulty processes keep
   agreement within gamma and crashed-then-recovered processes
   reintegrate. *)

module Plan = Csync_chaos.Plan
module Injector = Csync_chaos.Injector
module Gen = Csync_chaos.Gen
module Rng = Csync_sim.Rng
module Mb = Csync_net.Message_buffer
module Drift = Csync_clock.Drift
module Hw = Csync_clock.Hardware_clock
module Params = Csync_core.Params
module RC = Csync_harness.Runner_chaos
open Helpers

let t name f = Alcotest.test_case name `Quick f

let p = params ()

let iv a b = Plan.interval ~from_time:a ~until_time:b

let plan_tests =
  [
    t "interval rejects emptiness" (fun () ->
        check_raises_invalid "empty" (fun () -> ignore (iv 2. 2.));
        check_raises_invalid "backwards" (fun () -> ignore (iv 2. 1.));
        check_true "half-open start" (Plan.in_interval (iv 1. 2.) ~time:1.);
        check_true "half-open end" (not (Plan.in_interval (iv 1. 2.) ~time:2.)));
    t "validate catches malformed events" (fun () ->
        let v plan = Plan.validate ~n:7 plan in
        check_raises_invalid "pid range" (fun () ->
            v [ Plan.Crash { pid = 7; at = 1. } ]);
        check_raises_invalid "drop probability" (fun () ->
            v [ Plan.Link { src = 0; dst = 1; fault = Plan.Drop 1.5; over = iv 1. 2. } ]);
        check_raises_invalid "overlapping partition" (fun () ->
            v [ Plan.Partition { left = [ 0; 1 ]; right = [ 1; 2 ]; over = iv 1. 2. } ]);
        check_raises_invalid "recover without crash" (fun () ->
            v [ Plan.Recover { pid = 2; at = 3. } ]);
        check_raises_invalid "recover before crash" (fun () ->
            v [ Plan.Crash { pid = 2; at = 3. }; Plan.Recover { pid = 2; at = 2. } ]);
        (* a well-formed plan passes *)
        v
          [
            Plan.Crash { pid = 2; at = 3. };
            Plan.Recover { pid = 2; at = 4. };
            Plan.Link { src = 0; dst = 1; fault = Plan.Corrupt 0.5; over = iv 1. 2. };
          ]);
    t "link faults blame the sender, with settle" (fun () ->
        let plan =
          [ Plan.Link { src = 1; dst = 4; fault = Plan.Drop 1.; over = iv 1. 2. } ]
        in
        check_true "before" (Plan.suspects_at plan ~settle:0.5 ~time:0.5 = []);
        check_true "during" (Plan.suspects_at plan ~settle:0.5 ~time:1.5 = [ 1 ]);
        check_true "settling" (Plan.suspects_at plan ~settle:0.5 ~time:2.4 = [ 1 ]);
        check_true "after" (Plan.suspects_at plan ~settle:0.5 ~time:2.6 = []));
    t "a partition blames its smaller side" (fun () ->
        let plan =
          [
            Plan.Partition
              { left = [ 5 ]; right = [ 0; 1; 2; 3; 4; 6 ]; over = iv 1. 2. };
          ]
        in
        check_true "blames 5" (Plan.suspects_at plan ~settle:0. ~time:1.5 = [ 5 ]);
        check_int "peak" 1 (Plan.max_concurrent_suspects plan ~settle:0. ~horizon:3.));
    t "an unrecovered crash is suspect forever" (fun () ->
        let plan = [ Plan.Crash { pid = 3; at = 1. } ] in
        check_true "late" (Plan.suspects_at plan ~settle:0.5 ~time:100. = [ 3 ]);
        check_true "schedule" (Plan.crash_schedule plan = [ (3, 1., None) ]));
    t "crash schedule pairs recoveries" (fun () ->
        let plan =
          [ Plan.Crash { pid = 3; at = 1. }; Plan.Recover { pid = 3; at = 2.5 } ]
        in
        check_true "paired" (Plan.crash_schedule plan = [ (3, 1., Some 2.5) ]);
        check_true "suspect while down"
          (Plan.suspects_at plan ~settle:0.5 ~time:2. = [ 3 ]);
        check_true "clears after settle"
          (Plan.suspects_at plan ~settle:0.5 ~time:3.1 = []));
    t "describe summarizes" (fun () ->
        let plan =
          [
            Plan.Crash { pid = 3; at = 1. };
            Plan.Recover { pid = 3; at = 2. };
            Plan.Clock_step { pid = 1; at = 1.; amount = 1e-3 };
          ]
        in
        check_true "mentions crash" (contains (Plan.describe plan) "crash");
        check_true "mentions step" (contains (Plan.describe plan) "step"));
  ]

(* The injector compiles a plan into a Message_buffer tamper: a function of
   (now, src, dst, payload) returning delivery fates.  Drive it directly. *)
let injector_tests =
  let deliver_plain fates =
    match fates with
    | [ { Mb.payload; extra_delay } ] -> Some (payload, extra_delay)
    | _ -> None
  in
  let tamper ?(corrupt = fun _ x -> x) plan =
    let stats = Injector.stats () in
    (Injector.tamper ~plan ~rng:(Rng.create 11) ~corrupt ~stats, stats)
  in
  [
    t "drop at probability 1 kills the link, only inside the window" (fun () ->
        let plan =
          [ Plan.Link { src = 0; dst = 1; fault = Plan.Drop 1.; over = iv 1. 2. } ]
        in
        let tam, stats = tamper plan in
        check_true "dropped" (tam ~now:1.5 ~src:0 ~dst:1 42. = []);
        check_true "before window"
          (deliver_plain (tam ~now:0.5 ~src:0 ~dst:1 42.) = Some (42., 0.));
        check_true "other link"
          (deliver_plain (tam ~now:1.5 ~src:0 ~dst:2 42.) = Some (42., 0.));
        check_true "reverse direction"
          (deliver_plain (tam ~now:1.5 ~src:1 ~dst:0 42.) = Some (42., 0.));
        check_int "counted" 1 stats.Injector.dropped);
    t "duplicate at probability 1 sends two copies" (fun () ->
        let plan =
          [ Plan.Link { src = 2; dst = 5; fault = Plan.Duplicate 1.; over = iv 0. 9. } ]
        in
        let tam, stats = tamper plan in
        (match tam ~now:1. ~src:2 ~dst:5 7. with
        | [ a; b ] ->
          check_float "copy a" 7. a.Mb.payload;
          check_float "copy b" 7. b.Mb.payload
        | _ -> Alcotest.fail "expected two fates");
        check_int "counted" 1 stats.Injector.duplicated);
    t "reorder adds bounded extra delay" (fun () ->
        let jitter = 3e-4 in
        let plan =
          [ Plan.Link { src = 0; dst = 1; fault = Plan.Reorder jitter; over = iv 0. 9. } ]
        in
        let tam, stats = tamper plan in
        for _ = 1 to 50 do
          match tam ~now:1. ~src:0 ~dst:1 0. with
          | [ { Mb.extra_delay; _ } ] ->
            check_true "nonnegative" (extra_delay >= 0.);
            check_true "bounded" (extra_delay <= jitter)
          | _ -> Alcotest.fail "expected one fate"
        done;
        check_true "counted" (stats.Injector.delayed > 0));
    t "corrupt mangles the payload via the supplied function" (fun () ->
        let plan =
          [ Plan.Link { src = 0; dst = 1; fault = Plan.Corrupt 1.; over = iv 0. 9. } ]
        in
        let tam, stats = tamper ~corrupt:(fun _ x -> x +. 1000.) plan in
        check_true "mangled"
          (deliver_plain (tam ~now:1. ~src:0 ~dst:1 1.) = Some (1001., 0.));
        check_int "counted" 1 stats.Injector.corrupted);
    t "a partition cuts both directions, inside links survive" (fun () ->
        let plan =
          [ Plan.Partition { left = [ 0; 1 ]; right = [ 2; 3; 4; 5; 6 ]; over = iv 1. 2. } ]
        in
        let tam, stats = tamper plan in
        check_true "left to right" (tam ~now:1.5 ~src:0 ~dst:4 0. = []);
        check_true "right to left" (tam ~now:1.5 ~src:4 ~dst:0 0. = []);
        check_true "within left"
          (deliver_plain (tam ~now:1.5 ~src:0 ~dst:1 0.) <> None);
        check_true "within right"
          (deliver_plain (tam ~now:1.5 ~src:2 ~dst:6 0.) <> None);
        check_true "after heal"
          (deliver_plain (tam ~now:2.5 ~src:0 ~dst:4 0.) <> None);
        check_int "counted" 2 stats.Injector.partitioned);
    t "live filter: partitions and drops, receive side" (fun () ->
        let plan =
          [
            Plan.Partition { left = [ 3 ]; right = [ 0; 1; 2; 4; 5; 6 ]; over = iv 1. 2. };
            Plan.Link { src = 2; dst = 0; fault = Plan.Duplicate 1.; over = iv 0. 9. };
          ]
        in
        let stats = Injector.stats () in
        let link =
          Injector.live_link ~plan ~rng:(Rng.create 3) ~stats ~self:0 ~epoch:100.
        in
        check_true "cut peer dropped"
          (link ~now:101.5 ~dir:`Recv ~peer:3 = `Drop);
        check_true "cut healed" (link ~now:102.5 ~dir:`Recv ~peer:3 = `Deliver);
        check_true "duplicated" (link ~now:101.5 ~dir:`Recv ~peer:2 = `Duplicate);
        check_true "clean peer" (link ~now:101.5 ~dir:`Recv ~peer:5 = `Deliver));
    t "corrupt_float actually mangles" (fun () ->
        let rng = Rng.create 9 in
        let changed = ref 0 in
        for _ = 1 to 100 do
          let v = Injector.corrupt_float rng 1.25 in
          if v <> 1.25 then incr changed
        done;
        check_true "mostly different" (!changed > 90));
  ]

let disturbance_tests =
  [
    t "a step accumulates exactly its amount" (fun () ->
        let base = Drift.perfect in
        let stepped =
          Drift.disturb base ~horizon:10. [ Drift.Step { at = 1.; amount = 5e-4 } ]
        in
        let c = Hw.create stepped in
        check_float_tol 1e-12 "before" 0.5 (Hw.time c 0.5);
        check_float_tol 1e-9 "after" (8. +. 5e-4) (Hw.time c 8.);
        check_true "not rho-bounded while stepping"
          (not (Drift.is_rho_bounded ~rho:1e-6 stepped)));
    t "a backward step accumulates its negative amount" (fun () ->
        let stepped =
          Drift.disturb Drift.perfect ~horizon:10.
            [ Drift.Step { at = 2.; amount = -7e-4 } ]
        in
        let c = Hw.create stepped in
        check_float_tol 1e-9 "after" (9. -. 7e-4) (Hw.time c 9.));
    t "a rate excursion accumulates (factor - 1) x duration" (fun () ->
        let scaled =
          Drift.disturb Drift.perfect ~horizon:10.
            [ Drift.Rate_scale { from_time = 1.; until_time = 3.; factor = 1.001 } ]
        in
        let c = Hw.create scaled in
        check_float_tol 1e-9 "after" (8. +. (0.001 *. 2.)) (Hw.time c 8.));
    t "disturb validation" (fun () ->
        check_raises_invalid "zero factor" (fun () ->
            ignore
              (Drift.disturb Drift.perfect ~horizon:10.
                 [ Drift.Rate_scale { from_time = 1.; until_time = 2.; factor = 0. } ])));
  ]

let gen_tests =
  [
    t "generated plans validate and respect the fault budget" (fun () ->
        let window = iv (2. *. p.Params.big_p) (10. *. p.Params.big_p) in
        for seed = 0 to 49 do
          let spec =
            Gen.spec ~include_crash:(seed mod 2 = 0) ~params:p ~window ()
          in
          let plan = Gen.random ~rng:(Rng.create seed) spec in
          (* Gen.random validates internally; re-check the invariants here. *)
          Plan.validate ~n:p.Params.n plan;
          check_true "nonempty" (plan <> []);
          check_true "budget"
            (List.length (Plan.affected_pids plan) <= p.Params.f);
          if seed mod 2 = 0 then
            check_true "crash included" (Plan.crash_schedule plan <> [])
        done);
    t "generation is deterministic in the seed" (fun () ->
        let window = iv 1. 5. in
        let gen seed =
          Gen.random ~rng:(Rng.create seed) (Gen.spec ~params:p ~window ())
        in
        check_true "same seed, same plan" (gen 123 = gen 123);
        check_true "different seeds diverge somewhere"
          (List.exists (fun s -> gen s <> gen 123) [ 124; 125; 126 ]));
    t "max_victims caps the blast radius" (fun () ->
        let window = iv 1. 5. in
        for seed = 0 to 19 do
          let plan =
            Gen.random ~rng:(Rng.create seed)
              (Gen.spec ~max_victims:1 ~params:p ~window ())
          in
          check_int "one victim" 1 (List.length (Plan.affected_pids plan))
        done);
  ]

(* The acceptance property for the whole chaos layer: across >= 20 seeded
   random fault plans, (a) whenever at most f processes are concurrently
   faulty the nonfaulty ones agree within gamma, and (b) every process
   that crashes and recovers reintegrates within the run. *)
let campaign_tests =
  [
    t "campaign: 24 seeded plans hold gamma and reintegrate" (fun () ->
        let seeds = List.init 24 (fun i -> 1000 + i) in
        let runs = RC.campaign ~params:p ~seeds () in
        check_int "one run per seed" 24 (List.length runs);
        List.iter
          (fun { RC.seed; plan; result } ->
            let label what =
              Printf.sprintf "seed %d (%s): %s" seed (Plan.describe plan) what
            in
            check_true (label "checked samples")
              (result.RC.checked_samples > 0);
            check_true (label "clean-set agreement within gamma")
              (RC.agreement_ok result);
            check_true (label "suspects within budget")
              (result.RC.max_suspects <= p.Params.f);
            check_true (label "recoveries rejoined") (RC.recoveries_ok result))
          runs;
        (* Even seeds force a crash/recover pair, so reintegration is
           genuinely exercised, not vacuously true. *)
        let reintegrations =
          List.fold_left
            (fun acc r -> acc + List.length r.RC.result.RC.recoveries)
            0 runs
        in
        check_true "reintegration exercised" (reintegrations >= 10));
    t "a hand-written kitchen-sink plan passes" (fun () ->
        let big_p = p.Params.big_p in
        let plan =
          [
            Plan.Crash { pid = 6; at = 2.2 *. big_p };
            Plan.Recover { pid = 6; at = 4.7 *. big_p };
            Plan.Link
              {
                src = 1;
                dst = 3;
                fault = Plan.Drop 1.;
                over = iv (6. *. big_p) (8. *. big_p);
              };
          ]
        in
        let r = RC.run (RC.make ~seed:5 ~rounds:24 ~params:p plan) in
        check_true "ok" (RC.ok r);
        match r.RC.recoveries with
        | [ v ] ->
          check_int "pid" 6 v.RC.pid;
          check_true "rejoined" (v.RC.join_round <> None)
        | _ -> Alcotest.fail "expected one recovery");
  ]

let sexp_tests =
  [
    t "plan sexp round-trips every event kind" (fun () ->
        let plan =
          [
            Plan.Partition
              { left = [ 0; 1 ]; right = [ 2; 3 ]; over = iv 1. 2. };
            Plan.Link
              { src = 0; dst = 3; fault = Plan.Drop 0.75; over = iv 0.5 1.5 };
            Plan.Link
              { src = 1; dst = 2; fault = Plan.Duplicate 0.25; over = iv 1. 4. };
            Plan.Link
              { src = 2; dst = 0; fault = Plan.Reorder 0.125; over = iv 2. 3. };
            Plan.Link
              { src = 3; dst = 1; fault = Plan.Corrupt 1.; over = iv 0.25 9. };
            Plan.Clock_step { pid = 1; at = 1.5; amount = -0.0625 };
            Plan.Rate_change { pid = 2; factor = 1.0009765625; over = iv 2. 5. };
            Plan.Crash { pid = 3; at = 6. };
            Plan.Recover { pid = 3; at = 7.5 };
          ]
        in
        (match Plan.of_sexp_string (Plan.to_sexp_string plan) with
        | Error e -> Alcotest.failf "round-trip: %s" e
        | Ok plan' -> check_true "structurally equal" (plan = plan'));
        (* Dyadic times/probabilities round-trip bit-exactly via %h. *)
        match Plan.of_sexp_string (Plan.to_sexp_string plan) with
        | Ok plan' -> Plan.validate ~n:4 plan'
        | Error e -> Alcotest.failf "revalidate: %s" e);
    t "plan sexp rejects malformed input" (fun () ->
        (match Plan.of_sexp_string "(plan (crash (pid 1)" with
        | Ok _ -> Alcotest.fail "unbalanced parens accepted"
        | Error _ -> ());
        (match Plan.of_sexp_string "(schedule)" with
        | Ok _ -> Alcotest.fail "wrong head accepted"
        | Error _ -> ());
        match Plan.of_sexp_string "(plan (warp (pid 1) (at 2.0)))" with
        | Ok _ -> Alcotest.fail "unknown event accepted"
        | Error _ -> ());
    t "empty plan round-trips" (fun () ->
        match Plan.of_sexp_string (Plan.to_sexp_string []) with
        | Ok [] -> ()
        | Ok _ -> Alcotest.fail "expected empty plan"
        | Error e -> Alcotest.failf "empty: %s" e);
  ]

let suite =
  plan_tests @ injector_tests @ disturbance_tests @ gen_tests @ campaign_tests
  @ sexp_tests
