(* Tests for the Section 9.2 establishment algorithm: transition-function
   unit tests plus a small convergence run. *)

module Automaton = Csync_process.Automaton
module Params = Csync_core.Params
module Est = Csync_core.Establishment
open Helpers

let t name f = Alcotest.test_case name `Quick f

let p = params ()

let cfg = Est.config ~initial_corr:0.2 p

let auto = Est.automaton ~self_hint:0 cfg

let step ?(phys = 0.) interrupt s = auto.Automaton.handle ~self:0 ~phys interrupt s

let unit_tests =
  [
    t "intervals are positive and ordered" (fun () ->
        check_true "first" (Est.first_interval p > 0.);
        check_true "second" (Est.second_interval p > 0.);
        check_true "first larger" (Est.first_interval p > Est.second_interval p));
    t "start begins round 0: broadcast local time, set U timer" (fun () ->
        let s, actions = step ~phys:1. Automaton.Start auto.Automaton.initial in
        check_int "round 0" 0 (Est.rounds_completed s);
        match actions with
        | [ Automaton.Broadcast (Est.Time v); Automaton.Set_timer_logical u ] ->
          check_float "broadcasts local time" 1.2 v;
          check_float_tol 1e-12 "U" (1.2 +. Est.first_interval p) u
        | _ -> Alcotest.fail "expected Time broadcast + timer");
    t "a Time message wakes a sleeping process" (fun () ->
        let s, actions =
          step ~phys:1. (Automaton.Message (3, Est.Time 5.)) auto.Automaton.initial
        in
        check_int "round 0 started" 0 (Est.rounds_completed s);
        check_true "broadcast happened"
          (List.exists (function Automaton.Broadcast _ -> true | _ -> false) actions));
    t "full round via READY counting" (fun () ->
        (* Walk one process through a complete round by hand. *)
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let u = 0.2 +. Est.first_interval p in
        (* Everyone's Time arrives reading exactly our local clock value at
           arrival minus delta, so DIFF entries are all 0. *)
        let s =
          List.fold_left
            (fun s q ->
              let phys = 5e-4 +. (1e-5 *. float_of_int q) in
              let local = phys +. 0.2 in
              fst (step ~phys (Automaton.Message (q, Est.Time (local -. p.Params.delta))) s))
            s [ 0; 1; 2; 3; 4; 5; 6 ]
        in
        (* U timer: adjustment computed (A = 0 here), V timer armed. *)
        let s, actions = step ~phys:(u -. 0.2) (Automaton.Timer u) s in
        let v = u +. Est.second_interval p in
        (match actions with
         | [ Automaton.Set_timer_logical v' ] -> check_float_tol 1e-12 "V" v v'
         | _ -> Alcotest.fail "expected V timer");
        (* V timer: broadcast READY. *)
        let s, actions = step ~phys:(v -. 0.2) (Automaton.Timer v) s in
        (match actions with
         | [ Automaton.Broadcast Est.Ready ] -> ()
         | _ -> Alcotest.fail "expected READY broadcast");
        (* n - f = 5 READYs: apply A and begin round 1. *)
        let s =
          List.fold_left
            (fun s q -> fst (step ~phys:(v -. 0.19) (Automaton.Message (q, Est.Ready)) s))
            s [ 0; 1; 2; 3 ]
        in
        check_int "not yet" 0 (Est.rounds_completed s);
        let s, actions = step ~phys:(v -. 0.19) (Automaton.Message (4, Est.Ready)) s in
        check_int "round 1" 1 (Est.rounds_completed s);
        check_float_tol 1e-9 "corr unchanged (A = 0)" 0.2 (Est.corr s);
        check_true "new round broadcast"
          (List.exists
             (function Automaton.Broadcast (Est.Time _) -> true | _ -> false)
             actions));
    t "f+1 READYs inside the second interval trigger early READY" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let u = 0.2 +. Est.first_interval p in
        let s, _ = step ~phys:(u -. 0.2) (Automaton.Timer u) s in
        (* We are now inside the second interval (before V).  f + 1 = 3
           READYs must cause an early READY broadcast. *)
        let s, a1 = step ~phys:(u -. 0.2 +. 1e-5) (Automaton.Message (1, Est.Ready)) s in
        let s, a2 = step ~phys:(u -. 0.2 +. 2e-5) (Automaton.Message (2, Est.Ready)) s in
        check_true "quiet before threshold" (a1 = [] && a2 = []);
        let s, a3 = step ~phys:(u -. 0.2 +. 3e-5) (Automaton.Message (3, Est.Ready)) s in
        (match a3 with
         | [ Automaton.Broadcast Est.Ready ] -> ()
         | _ -> Alcotest.fail "expected early READY");
        (* The V timer must then stay silent. *)
        let v = u +. Est.second_interval p in
        let _, a4 = step ~phys:(v -. 0.2) (Automaton.Timer v) s in
        check_true "no duplicate READY" (a4 = []));
    t "duplicate READY from the same process ignored" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let u = 0.2 +. Est.first_interval p in
        let s, _ = step ~phys:(u -. 0.2) (Automaton.Timer u) s in
        let s, _ = step ~phys:(u -. 0.19) (Automaton.Message (1, Est.Ready)) s in
        let s, _ = step ~phys:(u -. 0.19) (Automaton.Message (1, Est.Ready)) s in
        let _, a = step ~phys:(u -. 0.19) (Automaton.Message (1, Est.Ready)) s in
        check_true "no early READY from one sender" (a = []));
    t "stale timers are ignored" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let _, actions = step ~phys:0.1 (Automaton.Timer 999.) s in
        check_true "ignored" (actions = []));
    t "history records round beginnings" (fun () ->
        let s, _ = step ~phys:3. Automaton.Start auto.Automaton.initial in
        match Est.history s with
        | [ r ] ->
          check_float "begin local" 3.2 r.Est.begin_local;
          check_float "begin phys" 3. r.Est.begin_phys;
          check_float "adjustment 0" 0. r.Est.adjustment
        | _ -> Alcotest.fail "one record");
  ]

let convergence_tests =
  [
    t "converges from 10s apart (runner, no faults)" (fun () ->
        let t0 =
          Csync_harness.Runner_establishment.default ~seed:5 ~initial_spread:10. p
        in
        let r = Csync_harness.Runner_establishment.run { t0 with rounds = 12 } in
        check_true "many rounds" (r.Csync_harness.Runner_establishment.rounds_completed > 5);
        check_true "converged"
          (r.Csync_harness.Runner_establishment.final_b < 1e-3));
    t "halving under colluding two-faced faults" (fun () ->
        let t0 =
          Csync_harness.Runner_establishment.with_standard_faults
            (Csync_harness.Runner_establishment.default ~seed:5 ~initial_spread:16. p)
        in
        let r = Csync_harness.Runner_establishment.run { t0 with rounds = 10 } in
        (* Rounds 1..4 must show ratios near 0.5 (never better than 0.4). *)
        let b = Array.of_list (List.map snd r.Csync_harness.Runner_establishment.b_series) in
        check_true "enough rounds" (Array.length b > 5);
        for i = 1 to 4 do
          let ratio = b.(i) /. b.(i - 1) in
          check_true
            (Printf.sprintf "ratio at %d in [0.4, 0.56], got %f" i ratio)
            (ratio >= 0.4 && ratio <= 0.56)
        done);
  ]

let suite = unit_tests @ convergence_tests
