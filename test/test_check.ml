(* Tests for the lib/check bounded model checker.

   The load-bearing test is the checker-vs-replay equality (satellite of
   the subsystem): for every schedule of a small scope, the outcome the
   checker computed through its per-round mini-simulations must equal -
   bit for bit - the skew of one continuous run of the production stack
   under the same concrete delays and Byzantine agenda.  That equality is
   what makes a counterexample found in the canonical state space a real
   execution of the simulator. *)

open Helpers
module Scope = Csync_check.Scope
module Step = Csync_check.Step
module Byz = Csync_check.Byz
module State = Csync_check.State
module Props = Csync_check.Props
module Cex = Csync_check.Cex
module Explorer = Csync_check.Explorer
module Replay = Csync_check.Replay
module Params = Csync_core.Params
module Plan = Csync_chaos.Plan

let t name f = Alcotest.test_case name `Quick f

let check_exact name a b =
  if not (Float.equal a b) then Alcotest.failf "%s: %h <> %h" name a b

(* Mixed-radix enumeration of every per-receiver delay-column assignment:
   [f] is called with each [cols] array, each entry in [0, ncols). *)
let iter_cols ~n ~ncols f =
  let cols = Array.make n 0 in
  let rec go i = if i = n then f cols
    else
      for c = 0 to ncols - 1 do
        cols.(i) <- c;
        go (i + 1)
      done
  in
  go 0

let pow b e =
  let r = ref 1 in
  for _ = 1 to e do r := !r * b done;
  !r

let choices_of scope =
  let ncols = pow scope.Scope.lattice scope.Scope.n_correct in
  let actions =
    if scope.Scope.byz then
      List.map (fun a -> Some a) (Byz.menu ~n_correct:scope.Scope.n_correct)
    else [ None ]
  in
  let acc = ref [] in
  List.iter
    (fun action ->
      iter_cols ~n:scope.Scope.n_correct ~ncols (fun cols ->
          acc := (action, Array.copy cols) :: !acc))
    actions;
  List.rev !acc

let cex_of_rounds scope ~init ~rounds ~measured =
  {
    Cex.preset = scope.Scope.name;
    n_correct = scope.Scope.n_correct;
    has_byz = scope.Scope.byz;
    params = scope.Scope.params;
    init;
    rounds;
    property = "agreement";
    bound = Scope.gamma scope;
    measured;
  }

(* Every schedule of [scope] for [depth] rounds from [init], except that
   rounds after the first follow [prefix_choice] is None ? all : just the
   given fixed spine - checker outcome vs continuous replay. *)
let assert_replay_equality scope ~init ~choice_rounds =
  List.iter
    (fun choices ->
      let corrs = ref (Array.copy init) in
      let rounds = ref [] in
      List.iteri
        (fun round choice ->
          let rc, (o : Step.outcome) =
            Explorer.apply_concrete scope ~round ~corrs:!corrs choice
          in
          Array.iter
            (fun c -> check_true "round completed" c)
            o.Step.completed;
          corrs := o.Step.corrs;
          rounds := rc :: !rounds)
        choices;
      let measured = State.spread !corrs in
      let cex =
        cex_of_rounds scope ~init ~rounds:(List.rev !rounds) ~measured
      in
      let r = Replay.run cex in
      if not (Float.equal r.Replay.skew measured) then
        Alcotest.failf "replay skew %h <> checker %h (%s)" r.Replay.skew
          measured
          (String.concat ";"
             (List.map
                (fun (a, _) ->
                  match a with
                  | Some a -> Byz.action_name a
                  | None -> "none")
                choices));
      (match Replay.diff_provenance cex r.Replay.delay_log with
      | [] -> ()
      | m :: _ ->
        Alcotest.failf "provenance diff at %h: %d->%d expected %h got %h"
          m.Replay.at m.Replay.src m.Replay.dst m.Replay.expected
          m.Replay.actual);
      Array.iteri
        (fun pid c ->
          check_exact (Printf.sprintf "final corr pid %d" pid) !corrs.(pid) c)
        r.Replay.final_corrs)
    choice_rounds

let step_tests =
  [
    t "nominal round completes and converges" (fun () ->
        let scope = Scope.preset_exn "agreement-n3f1" in
        let p = scope.Scope.params in
        let init = [| 0.; p.Params.beta /. 2.; p.Params.beta |] in
        let sends =
          Byz.agenda ~spread:scope.Scope.spread
            ~t_r:(Step.round_start scope 0) ~rank_pids:[| 0; 1; 2 |]
            Byz.Nominal
        in
        let o =
          Step.run_round ~scope ~round:0 ~corrs:init ~byz_sends:sends
            ~delay:(fun ~src:_ ~dst:_ -> p.Params.delta)
        in
        Array.iter (fun c -> check_true "completed" c) o.Step.completed;
        check_true "spread shrank"
          (State.spread o.Step.corrs < State.spread init);
        check_true "no property violation"
          (Props.check_outcome scope o = []));
    t "omission round still completes" (fun () ->
        let scope = Scope.preset_exn "agreement-n3f1" in
        let p = scope.Scope.params in
        let init = [| 0.; 0.; p.Params.beta |] in
        let o =
          Step.run_round ~scope ~round:0 ~corrs:init ~byz_sends:[]
            ~delay:(fun ~src:_ ~dst:_ -> p.Params.delta)
        in
        Array.iter (fun c -> check_true "completed" c) o.Step.completed;
        check_true "bounded adj"
          (Array.for_all
             (fun a -> Float.abs a <= Params.adjustment_bound p)
             o.Step.adjs));
  ]

let equality_tests =
  [
    t "replay equals checker on every 1-round schedule (3 correct + byz)"
      (fun () ->
        let scope =
          { (Scope.preset_exn "agreement-n3f1") with Scope.depth = 1 }
        in
        let p = scope.Scope.params in
        let init = [| 0.; p.Params.beta /. 4.; p.Params.beta |] in
        assert_replay_equality scope ~init
          ~choice_rounds:(List.map (fun c -> [ c ]) (choices_of scope)));
    t "replay equals checker on every 1-round schedule (2 correct + byz)"
      (fun () ->
        let scope =
          { (Scope.preset_exn "divergence-n2f1") with Scope.depth = 1 }
        in
        let p = scope.Scope.params in
        let init = [| 0.; p.Params.beta |] in
        assert_replay_equality scope ~init
          ~choice_rounds:(List.map (fun c -> [ c ]) (choices_of scope)));
    t "replay equals checker across 2 chained rounds" (fun () ->
        (* Fix an adversarial first round, enumerate every second round:
           exercises the round boundary (stale arrival entries, re-armed
           timers) that the mini-simulation abstracts away.  Uses the
           in-theorem n >= 3f+1 scope: the abstraction's precondition is
           that round-boundary spread stays within beta (Lemma 5's wait
           window), which the n = 3f divergence scope deliberately breaks -
           there the explorer stops at the first violating depth instead of
           chaining. *)
        let scope =
          { (Scope.preset_exn "agreement-n3f1") with Scope.depth = 2 }
        in
        let p = scope.Scope.params in
        let init = [| 0.; p.Params.beta /. 2.; p.Params.beta |] in
        let all = choices_of scope in
        let spines =
          [
            (Some Byz.Omit, [| 1; 6; 3 |]);
            (Some (Byz.Two_faced_inv 1), [| 7; 0; 5 |]);
          ]
        in
        List.iter
          (fun spine ->
            assert_replay_equality scope ~init
              ~choice_rounds:(List.map (fun c -> [ spine; c ]) all))
          spines);
  ]

let explorer_tests =
  [
    t "agreement-n3f1 depth 1: exhaustive, no violation" (fun () ->
        let scope =
          { (Scope.preset_exn "agreement-n3f1") with Scope.depth = 1 }
        in
        let r = Explorer.run ~jobs:2 scope in
        check_true "no violations" (r.Explorer.violations = []);
        check_true "not truncated" (not r.Explorer.stats.Explorer.truncated);
        check_true "visited states" (r.Explorer.stats.Explorer.states > 0);
        check_true "dedup did work" (r.Explorer.stats.Explorer.deduped > 0);
        check_true "ran schedules"
          (r.Explorer.stats.Explorer.transitions
          > r.Explorer.stats.Explorer.sims));
    t "weakened gamma yields a counterexample that replays exactly"
      (fun () ->
        let scope =
          {
            (Scope.preset_exn "agreement-n3f1") with
            Scope.depth = 1;
            gamma_factor = 0.5;
          }
        in
        let r = Explorer.run ~jobs:2 scope in
        (match r.Explorer.violations with
        | [] -> Alcotest.fail "expected a violation at gamma/2"
        | v :: _ ->
          let cex = v.Explorer.cex in
          check_true "bound is the weakened gamma"
            (Float.equal cex.Cex.bound (Scope.gamma scope));
          check_true "measured exceeds bound"
            (cex.Cex.measured > cex.Cex.bound);
          let rep = Replay.run cex in
          check_exact "replayed skew" cex.Cex.measured rep.Replay.skew;
          check_true "provenance matches"
            (Replay.diff_provenance cex rep.Replay.delay_log = []);
          (* Serialization round-trip preserves replay behaviour. *)
          (match Cex.of_sexp_string (Cex.to_sexp_string cex) with
          | Error e -> Alcotest.failf "round-trip: %s" e
          | Ok cex' ->
            let rep' = Replay.run cex' in
            check_exact "round-tripped replay" rep.Replay.skew
              rep'.Replay.skew)));
    t "divergence-n2f1 (n = 3f) breaks gamma" (fun () ->
        let r = Explorer.run ~jobs:2 (Scope.preset_exn "divergence-n2f1") in
        match
          List.filter
            (fun v ->
              v.Explorer.prop.Props.kind = Props.Agreement)
            r.Explorer.violations
        with
        | [] -> Alcotest.fail "expected agreement violation below 3f+1"
        | v :: _ ->
          let rep = Replay.run v.Explorer.cex in
          check_exact "replayed divergence" v.Explorer.cex.Cex.measured
            rep.Replay.skew);
    t "exploration is deterministic across job counts" (fun () ->
        let scope =
          { (Scope.preset_exn "divergence-n2f1") with Scope.depth = 1 }
        in
        let a = Explorer.run ~jobs:1 scope in
        let b = Explorer.run ~jobs:4 scope in
        check_int "states" a.Explorer.stats.Explorer.states
          b.Explorer.stats.Explorer.states;
        check_int "transitions" a.Explorer.stats.Explorer.transitions
          b.Explorer.stats.Explorer.transitions;
        check_int "violations"
          (List.length a.Explorer.violations)
          (List.length b.Explorer.violations);
        match (a.Explorer.violations, b.Explorer.violations) with
        | va :: _, vb :: _ ->
          check_bool "same first cex"
            (Cex.to_sexp_string va.Explorer.cex
            = Cex.to_sexp_string vb.Explorer.cex)
            true
        | _ -> ());
    t "validity-n3f1 depth 1: envelope holds" (fun () ->
        let scope =
          { (Scope.preset_exn "validity-n3f1") with Scope.depth = 1 }
        in
        let r = Explorer.run ~jobs:2 scope in
        check_true "no violations" (r.Explorer.violations = []);
        check_true "not truncated" (not r.Explorer.stats.Explorer.truncated));
    t "reintegration-n3: every delay path rejoins within gamma" (fun () ->
        let r =
          Explorer.run_reintegration ~jobs:2
            (Scope.preset_exn "reintegration-n3")
        in
        check_true "paths explored" (r.Explorer.paths > 0);
        check_int "all joined" r.Explorer.paths r.Explorer.joined;
        check_int "all within gamma" r.Explorer.paths r.Explorer.within_gamma;
        check_true "no failures" (r.Explorer.failures = []));
  ]

let cex_tests =
  [
    t "omission counterexample exports to a chaos plan" (fun () ->
        let scope = Scope.preset_exn "agreement-n3f1" in
        let p = scope.Scope.params in
        let n_c = scope.Scope.n_correct in
        let d = Array.make_matrix n_c n_c p.Params.delta in
        let rc =
          { Cex.action = Some Byz.Omit; sends = []; delays = d }
        in
        let cex =
          cex_of_rounds scope
            ~init:[| 0.; 0.; p.Params.beta |]
            ~rounds:[ rc ] ~measured:0.
        in
        (match Cex.to_chaos_plan cex with
        | Error e -> Alcotest.failf "expected plan, got: %s" e
        | Ok plan ->
          Plan.validate ~n:(Scope.n_total scope) plan;
          check_int "one drop per nonfaulty receiver" n_c
            (List.length plan));
        let timed =
          {
            cex with
            Cex.rounds =
              [
                {
                  Cex.action = Some Byz.Late_all;
                  sends =
                    Byz.agenda ~spread:scope.Scope.spread
                      ~t_r:(Step.round_start scope 0)
                      ~rank_pids:[| 0; 1; 2 |] Byz.Late_all;
                  delays = d;
                };
              ];
          }
        in
        match Cex.to_chaos_plan timed with
        | Ok _ -> Alcotest.fail "timing action must not export"
        | Error e -> check_true "mentions the action" (contains e "late"));
    t "cex parse rejects garbage" (fun () ->
        (match Cex.of_sexp_string "(not a cex" with
        | Ok _ -> Alcotest.fail "expected parse error"
        | Error _ -> ());
        match Cex.of_sexp_string "(cex (version 99))" with
        | Ok _ -> Alcotest.fail "expected version error"
        | Error _ -> ());
  ]

let suite = step_tests @ equality_tests @ explorer_tests @ cex_tests
