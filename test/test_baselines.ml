(* Tests for the Section 10 baseline algorithms. *)

module Automaton = Csync_process.Automaton
module Params = Csync_core.Params
module B = Csync_baselines
module Signed = Csync_net.Signed
open Helpers

let t name f = Alcotest.test_case name `Quick f

let p = params ()

let lm_tests =
  [
    t "egocentric average keeps close readings" (fun () ->
        let est = [| 0.1; -0.1; 0.05; 0.; 0.; 0.; 0.05 |] in
        check_float_tol 1e-12 "mean of all" (0.1 /. 7.)
          (B.Lm_cnv.egocentric_average ~threshold:1. ~f:2 est));
    t "egocentric average zeroes wild readings" (fun () ->
        let est = [| 100.; -50.; 0.05; 0.; 0.; 0.; 0.05 |] in
        check_float_tol 1e-12 "outliers replaced by 0" (0.1 /. 7.)
          (B.Lm_cnv.egocentric_average ~threshold:1. ~f:2 est));
    t "egocentric average of sentinels is 0" (fun () ->
        let est = Array.make 7 B.Convergence_round.est_sentinel in
        check_float "zero" 0. (B.Lm_cnv.egocentric_average ~threshold:1. ~f:2 est));
  ]

let ms_tests =
  [
    t "accepted_mean keeps corroborated readings" (fun () ->
        (* n = 7, f = 2: a value needs support from >= 5 entries. *)
        let est = [| 0.1; 0.1; 0.1; 0.1; 0.1; 50.; -50. |] in
        check_float_tol 1e-12 "mean of the cluster" 0.1
          (B.Mahaney_schneider.accepted_mean ~tolerance:0.5 ~f:2 est));
    t "accepted_mean is 0 when nothing qualifies" (fun () ->
        let est = [| 0.; 10.; 20.; 30.; 40.; 50.; 60. |] in
        check_float "none" 0. (B.Mahaney_schneider.accepted_mean ~tolerance:0.5 ~f:2 est));
    t "an isolated pair is rejected" (fun () ->
        let est = [| 0.; 0.; 0.; 0.; 0.; 7.; 7. |] in
        check_float_tol 1e-12 "pair dropped" 0.
          (B.Mahaney_schneider.accepted_mean ~tolerance:0.5 ~f:2 est));
  ]

(* Drive the ST transition function directly. *)
let st_tests =
  let cfg = B.Srikanth_toueg.config ~params:p () in
  let auto = B.Srikanth_toueg.automaton ~self_hint:0 cfg in
  let step ~phys i s = auto.Automaton.handle ~self:0 ~phys i s in
  let t1 = p.Params.t0 +. p.Params.big_p in
  [
    t "start arms the round-1 timer" (fun () ->
        let _, actions = step ~phys:0. Automaton.Start auto.Automaton.initial in
        match actions with
        | [ Automaton.Set_timer_logical v ] -> check_float "T1" t1 v
        | _ -> Alcotest.fail "expected timer");
    t "own timer announces the round" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let _, actions = step ~phys:t1 (Automaton.Timer t1) s in
        match actions with
        | [ Automaton.Broadcast 1 ] -> ()
        | _ -> Alcotest.fail "expected (round 1)");
    t "stale timers do not announce" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let _, actions = step ~phys:0.1 (Automaton.Timer 0.09) s in
        check_true "silent" (actions = []));
    t "f+1 distinct senders trigger a relay" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let s, a1 = step ~phys:0.49 (Automaton.Message (1, 1)) s in
        let s, a2 = step ~phys:0.49 (Automaton.Message (2, 1)) s in
        check_true "quiet below f+1" (a1 = [] && a2 = []);
        let _, a3 = step ~phys:0.49 (Automaton.Message (3, 1)) s in
        check_true "relays at f+1"
          (List.exists (function Automaton.Broadcast 1 -> true | _ -> false) a3));
    t "duplicate senders do not count" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let s, _ = step ~phys:0.49 (Automaton.Message (1, 1)) s in
        let s, _ = step ~phys:0.49 (Automaton.Message (1, 1)) s in
        let _, a = step ~phys:0.49 (Automaton.Message (1, 1)) s in
        check_true "no relay" (a = []));
    t "2f+1 distinct senders accept: clock set to T_k + delta" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let feed s q = fst (step ~phys:0.4999 (Automaton.Message (q, 1)) s) in
        let s = List.fold_left feed s [ 1; 2; 3; 4 ] in
        let s, actions = step ~phys:0.4999 (Automaton.Message (5, 1)) s in
        check_int "accepted" 1 (B.Srikanth_toueg.rounds_accepted s);
        check_float_tol 1e-9 "corr = T1 + delta - local"
          (t1 +. p.Params.delta -. 0.4999)
          (B.Srikanth_toueg.corr s);
        check_true "timer for next round"
          (List.exists
             (function Automaton.Set_timer_logical _ -> true | _ -> false)
             actions);
        match B.Srikanth_toueg.history s with
        | [ r ] ->
          check_int "senders heard" 5 r.B.Srikanth_toueg.senders_heard;
          check_int "round" 1 r.B.Srikanth_toueg.round
        | _ -> Alcotest.fail "one record");
    t "old-round messages ignored after accept" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let feed s q = fst (step ~phys:0.4999 (Automaton.Message (q, 1)) s) in
        let s = List.fold_left feed s [ 1; 2; 3; 4; 5 ] in
        let _, a = step ~phys:0.5 (Automaton.Message (6, 1)) s in
        check_true "ignored" (a = []));
  ]

let hssd_tests =
  let cfg = B.Hssd.config ~params:p () in
  let auto = B.Hssd.automaton ~self_hint:0 cfg in
  let step ~phys i s = auto.Automaton.handle ~self:0 ~phys i s in
  let t1 = p.Params.t0 +. p.Params.big_p in
  [
    t "own timer starts the round, signs and broadcasts" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let s, actions = step ~phys:t1 (Automaton.Timer t1) s in
        check_int "accepted" 1 (B.Hssd.rounds_accepted s);
        match actions with
        | [ Automaton.Broadcast signed; Automaton.Set_timer_logical _ ] ->
          check_int "value" 1 (Signed.value signed);
          check_int "origin is self" 0 (Signed.origin signed)
        | _ -> Alcotest.fail "expected signed broadcast");
    t "valid signed message accepted: clock jumps to T_k + s(delta+eps)" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let msg = Signed.sign ~signer:3 1 in
        let arrival = t1 -. 2e-4 (* slightly before our own clock reaches T1 *) in
        let s, actions = step ~phys:arrival (Automaton.Message (3, msg)) s in
        check_int "accepted" 1 (B.Hssd.rounds_accepted s);
        check_float_tol 1e-9 "corr"
          (t1 +. p.Params.delta +. p.Params.eps -. arrival)
          (B.Hssd.corr s);
        check_true "countersigned relay"
          (List.exists
             (function
               | Automaton.Broadcast m -> Signed.chain m = [ 3; 0 ]
               | _ -> false)
             actions));
    t "rejects a too-early signed message" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let msg = Signed.sign ~signer:3 1 in
        let _, actions = step ~phys:0.1 (Automaton.Message (3, msg)) s in
        check_true "ignored" (actions = []));
    t "rejects duplicate-signer chains" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let msg = Signed.countersign ~signer:3 (Signed.sign ~signer:3 1) in
        let _, actions = step ~phys:(t1 -. 2e-4) (Automaton.Message (3, msg)) s in
        check_true "ignored" (actions = []));
    t "rejects chains already bearing our signature" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let msg = Signed.countersign ~signer:0 (Signed.sign ~signer:3 1) in
        let _, actions = step ~phys:(t1 -. 2e-4) (Automaton.Message (3, msg)) s in
        check_true "ignored" (actions = []));
    t "rejects wrong-round values" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        let msg = Signed.sign ~signer:3 7 in
        let _, actions = step ~phys:(t1 -. 2e-4) (Automaton.Message (3, msg)) s in
        check_true "ignored" (actions = []));
  ]

let marzullo_tests =
  let cfg = B.Marzullo.config ~params:p () in
  let auto = B.Marzullo.automaton ~self_hint:0 cfg in
  let step ~phys i s = auto.Automaton.handle ~self:0 ~phys i s in
  [
    t "best_interval: textbook example" (fun () ->
        (* Marzullo's classic: [8,12] [11,13] [14,15] -> best is [11,12]
           with 2 sources. *)
        let count, (lo, hi) =
          B.Marzullo.best_interval [ (8., 12.); (11., 13.); (14., 15.) ]
        in
        check_int "count" 2 count;
        check_float "lo" 11. lo;
        check_float "hi" 12. hi);
    t "best_interval: all agree" (fun () ->
        let count, (lo, hi) =
          B.Marzullo.best_interval [ (0., 10.); (5., 15.); (9., 20.) ]
        in
        check_int "count" 3 count;
        check_float "lo" 9. lo;
        check_float "hi" 10. hi);
    t "best_interval: disjoint picks widest" (fun () ->
        let count, (lo, hi) =
          B.Marzullo.best_interval [ (0., 1.); (5., 9.) ]
        in
        check_int "count" 1 count;
        check_float "lo" 5. lo;
        check_float "hi" 9. hi);
    t "best_interval: touching endpoints count as overlap" (fun () ->
        let count, _ = B.Marzullo.best_interval [ (0., 5.); (5., 9.) ] in
        check_int "count" 2 count);
    t "best_interval validates" (fun () ->
        check_raises_invalid "empty" (fun () -> ignore (B.Marzullo.best_interval []));
        check_raises_invalid "inverted" (fun () ->
            ignore (B.Marzullo.best_interval [ (2., 1.) ])));
    qcheck ~name:"best_interval point is in `count` intervals"
      QCheck2.Gen.(
        list_size (int_range 1 12)
          (map
             (fun (a, b) -> (Float.min a b, Float.max a b))
             (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.))))
      (fun intervals ->
        let count, (lo, hi) = B.Marzullo.best_interval intervals in
        let mid = (lo +. hi) /. 2. in
        let covering =
          List.length (List.filter (fun (a, b) -> a <= mid && mid <= b) intervals)
        in
        covering = count);
    t "protocol: confident liar is outvoted" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        (* 5 honest readings near zero offset, 2 liars far away with tiny
           claimed error. *)
        let feed s (q, v, e) =
          fst (step ~phys:p.Params.delta (Automaton.Message (q, (v, e))) s)
        in
        let s =
          List.fold_left feed s
            [
              (0, 0., 4.5e-4); (1, 1e-5, 4.5e-4); (2, -1e-5, 4.5e-4);
              (3, 2e-5, 4.5e-4); (4, 0., 4.5e-4);
              (5, 0.5, 1e-9); (6, -0.5, 1e-9);
            ]
        in
        let s, _ = step ~phys:2e-3 (Automaton.Timer 0.) s in
        (* Adjustment stays at the honest offset scale, not the liars'. *)
        check_true "small adj" (Float.abs (B.Marzullo.corr s) < 1e-3);
        check_true "error bounded" (B.Marzullo.error_bound s < 2e-3);
        match B.Marzullo.history s with
        | [ r ] -> check_true "support >= n-f-1" (r.B.Marzullo.support >= 4)
        | _ -> Alcotest.fail "one record");
    t "protocol: without support the clock holds and error grows" (fun () ->
        let s, _ = step ~phys:0. Automaton.Start auto.Automaton.initial in
        (* Only 2 mutually-incompatible readings arrive. *)
        let feed s (q, v, e) =
          fst (step ~phys:p.Params.delta (Automaton.Message (q, (v, e))) s)
        in
        let s = List.fold_left feed s [ (1, 0.5, 1e-9); (2, -0.5, 1e-9) ] in
        let before_err = B.Marzullo.error_bound s in
        let s, _ = step ~phys:2e-3 (Automaton.Timer 0.) s in
        check_float "no adjustment" 0. (B.Marzullo.corr s);
        check_true "error grew" (B.Marzullo.error_bound s > before_err));
  ]

let runner_tests =
  [
    t "all algorithms synchronize better than no algorithm" (fun () ->
        let module R = Csync_harness.Runner_baseline in
        let control =
          R.run ~algo:R.Unsynchronized ~params:p ~seed:3 ~faults:R.No_faults
            ~rounds:12
        in
        List.iter
          (fun algo ->
            let r = R.run ~algo ~params:p ~seed:3 ~faults:R.No_faults ~rounds:12 in
            check_true
              (R.algo_name algo ^ " beats control")
              (r.R.steady_skew < control.R.steady_skew);
            check_true
              (R.algo_name algo ^ " completes rounds")
              (r.R.rounds_completed >= 10))
          [ R.Welch_lynch; R.Lm_cnv; R.Mahaney_schneider; R.Srikanth_toueg;
            R.Marzullo ]);
  ]

let suite = lm_tests @ ms_tests @ st_tests @ hssd_tests @ marzullo_tests @ runner_tests
