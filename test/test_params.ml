(* Tests for the Section 5.2 parameter calculus. *)

module P = Csync_core.Params
open Helpers

let t name f = Alcotest.test_case name `Quick f

let ok_params = params

let unit_tests =
  [
    t "make accepts a valid configuration" (fun () ->
        match
          P.make ~n:7 ~f:2 ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~beta:4.5e-4
            ~big_p:0.5 ()
        with
        | Ok p -> check_int "n" 7 p.P.n
        | Error _ -> Alcotest.fail "expected Ok");
    t "rejects n < 3f+1" (fun () ->
        match
          P.make ~n:6 ~f:2 ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~beta:4.5e-4
            ~big_p:0.5 ()
        with
        | Error errs ->
          check_true "mentions A2"
            (List.exists (function P.Bad_counts _ -> true | _ -> false) errs)
        | Ok _ -> Alcotest.fail "expected Error");
    t "rejects delta <= eps (A3)" (fun () ->
        match
          P.make ~n:7 ~f:2 ~rho:1e-6 ~delta:1e-4 ~eps:1e-3 ~beta:4.5e-3
            ~big_p:0.5 ()
        with
        | Error errs ->
          check_true "delay error"
            (List.exists (function P.Bad_delay _ -> true | _ -> false) errs)
        | Ok _ -> Alcotest.fail "expected Error");
    t "rejects P below its lower bound" (fun () ->
        match
          P.make ~n:7 ~f:2 ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~beta:4.5e-4
            ~big_p:1e-4 ()
        with
        | Error errs ->
          check_true "P too small"
            (List.exists (function P.P_too_small _ -> true | _ -> false) errs)
        | Ok _ -> Alcotest.fail "expected Error");
    t "rejects P above its upper bound" (fun () ->
        match
          P.make ~n:7 ~f:2 ~rho:1e-5 ~delta:1e-3 ~eps:1e-4 ~beta:4.5e-4
            ~big_p:100. ()
        with
        | Error errs ->
          check_true "P too large"
            (List.exists (function P.P_too_large _ -> true | _ -> false) errs)
        | Ok _ -> Alcotest.fail "expected Error");
    t "rejects beta below self-consistency" (fun () ->
        match
          P.make ~n:7 ~f:2 ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~beta:1e-5
            ~big_p:0.5 ()
        with
        | Error errs ->
          check_true "beta inconsistent"
            (List.exists
               (function
                 | P.Beta_inconsistent _ | P.P_too_small _ | P.P_too_large _ -> true
                 | _ -> false)
               errs)
        | Ok _ -> Alcotest.fail "expected Error");
    t "make_exn raises with message" (fun () ->
        check_raises_invalid "make_exn" (fun () ->
            ignore
              (P.make_exn ~n:1 ~f:2 ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~beta:1.
                 ~big_p:0.5 ())));
    t "unchecked allows n = 3f but keeps sanity" (fun () ->
        let p =
          P.unchecked ~n:6 ~f:2 ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~beta:4.5e-4
            ~big_p:0.5 ()
        in
        check_int "n" 6 p.P.n;
        check_raises_invalid "still checks delta/eps" (fun () ->
            ignore
              (P.unchecked ~n:6 ~f:2 ~rho:1e-6 ~delta:1e-4 ~eps:1e-3 ~beta:1.
                 ~big_p:0.5 ())));
    t "auto picks a beta that passes check" (fun () ->
        match P.auto ~n:7 ~f:2 ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~big_p:0.5 () with
        | Ok p -> check_true "check empty" (P.check p = [])
        | Error _ -> Alcotest.fail "auto failed");
    t "p_min formula (rho = 0)" (fun () ->
        (* max(3(beta+eps), 2 beta + delta + 2 eps) *)
        check_float "p_min small beta" (1e-3 +. 4e-4 +. 2e-4)
          (P.p_min ~rho:0. ~delta:1e-3 ~eps:1e-4 ~beta:2e-4);
        check_float "p_min big beta" (3. *. 1.1e-2)
          (P.p_min ~rho:0. ~delta:1e-3 ~eps:1e-3 ~beta:1e-2));
    t "p_max infinite when rho = 0" (fun () ->
        check_true "inf" (P.p_max ~rho:0. ~delta:1e-3 ~eps:1e-4 ~beta:1e-3 = infinity));
    t "p_min <= p_max for a workable beta" (fun () ->
        let beta = P.beta_min ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~big_p:0.5 *. 1.05 in
        check_true "nonempty interval"
          (P.p_min ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~beta
           <= P.p_max ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~beta));
    t "beta_min ~ 4 eps + 4 rho P" (fun () ->
        let b = P.beta_min ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~big_p:0.5 in
        let approx = P.beta_approx ~rho:1e-6 ~eps:1e-4 ~big_p:0.5 in
        check_true "same ballpark" (b >= approx *. 0.9 && b <= approx *. 1.3));
    t "beta_min when rho = 0 is the 4 eps fixpoint" (fun () ->
        check_float "4eps" 4e-4 (P.beta_min ~rho:0. ~delta:1e-3 ~eps:1e-4 ~big_p:0.5));
    t "gamma exceeds beta + eps" (fun () ->
        let p = ok_params () in
        check_true "gamma" (P.gamma p > p.P.beta +. p.P.eps));
    t "gamma formula at rho = 0 is beta + eps" (fun () ->
        let p =
          P.make_exn ~n:7 ~f:2 ~rho:0. ~delta:1e-3 ~eps:1e-4 ~beta:4.5e-4
            ~big_p:0.5 ()
        in
        check_float "gamma" (4.5e-4 +. 1e-4) (P.gamma p));
    t "adjustment bound formula" (fun () ->
        let p = ok_params () in
        check_float_tol 1e-12 "lemma 7"
          ((1. +. p.P.rho) *. (p.P.beta +. p.P.eps) +. (p.P.rho *. p.P.delta))
          (P.adjustment_bound p));
    t "lambda is nearly P" (fun () ->
        let p = ok_params () in
        check_true "lambda" (P.lambda p > 0.99 *. p.P.big_p && P.lambda p < p.P.big_p));
    t "validity coefficients bracket 1" (fun () ->
        let a1, a2, a3 = P.validity (ok_params ()) in
        check_true "a1 < 1 < a2" (a1 < 1. && 1. < a2);
        check_float "a3 = eps" 1e-4 a3);
    t "round_start and update_time" (fun () ->
        let p = ok_params () in
        check_float "T^3" (3. *. 0.5) (P.round_start p 3);
        check_true "U^i > T^i" (P.update_time p 3 > P.round_start p 3));
    t "wait window formula" (fun () ->
        let p = ok_params () in
        check_float_tol 1e-12 "window"
          ((1. +. p.P.rho) *. (p.P.beta +. p.P.delta +. p.P.eps))
          (P.wait_window p));
  ]

let gen_config =
  let open QCheck2.Gen in
  let* rho = oneofl [ 0.; 1e-7; 1e-6; 1e-5 ] in
  let* delta = oneofl [ 1e-4; 1e-3; 1e-2 ] in
  let* eps_frac = oneofl [ 0.01; 0.1; 0.5 ] in
  let* big_p = oneofl [ 0.05; 0.5; 5. ] in
  return (rho, delta, delta *. eps_frac, big_p)

let prop_tests =
  [
    qcheck ~count:100 ~name:"auto always yields a checked configuration"
      gen_config (fun (rho, delta, eps, big_p) ->
        match P.auto ~n:7 ~f:2 ~rho ~delta ~eps ~big_p () with
        | Ok p -> P.check p = []
        | Error _ ->
          (* Only acceptable if P is genuinely below the minimum for the
             smallest admissible beta. *)
          let beta = P.beta_min ~rho ~delta ~eps ~big_p *. 1.05 in
          big_p < P.p_min ~rho ~delta ~eps ~beta);
    qcheck ~count:100 ~name:"gamma grows with beta" gen_config
      (fun (rho, delta, eps, big_p) ->
        match P.auto ~n:7 ~f:2 ~rho ~delta ~eps ~big_p () with
        | Error _ -> true
        | Ok p ->
          let bigger =
            P.unchecked ~n:7 ~f:2 ~rho ~delta ~eps ~beta:(2. *. p.P.beta)
              ~big_p ()
          in
          P.gamma bigger > P.gamma p);
  ]

let suite = unit_tests @ prop_tests
