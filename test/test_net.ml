(* Tests for delay models, the collision model, the global message buffer
   and simulated signatures. *)

module Delay = Csync_net.Delay
module Collision = Csync_net.Collision
module Mb = Csync_net.Message_buffer
module Signed = Csync_net.Signed
module Engine = Csync_sim.Engine
module Rng = Csync_sim.Rng
open Helpers

let t name f = Alcotest.test_case name `Quick f

let delay_tests =
  [
    t "constant" (fun () ->
        let d = Delay.constant 0.01 in
        check_float "draw" 0.01 (Delay.draw d ~src:0 ~dst:1 ~now:0.);
        check_true "bounds" (Delay.bounds d = (0.01, 0.01)));
    t "uniform within bounds" (fun () ->
        let d = Delay.uniform ~delta:1e-3 ~eps:1e-4 ~rng:(Rng.create 1) in
        for _ = 1 to 1000 do
          let x = Delay.draw d ~src:0 ~dst:1 ~now:0. in
          check_true "in range" (x >= 9e-4 && x <= 1.1e-3)
        done);
    t "extremes are bimodal" (fun () ->
        let d = Delay.extremes ~delta:1e-3 ~eps:1e-4 ~rng:(Rng.create 1) in
        let lo = ref false and hi = ref false in
        for _ = 1 to 100 do
          let x = Delay.draw d ~src:0 ~dst:1 ~now:0. in
          if Float.abs (x -. 9e-4) < 1e-12 then lo := true;
          if Float.abs (x -. 1.1e-3) < 1e-12 then hi := true
        done;
        check_true "both extremes hit" (!lo && !hi));
    t "per_link clamps" (fun () ->
        let d = Delay.per_link ~delta:1e-3 ~eps:1e-4 (fun ~src:_ ~dst:_ -> 5.) in
        check_float "clamped" 1.1e-3 (Delay.draw d ~src:0 ~dst:1 ~now:0.));
    t "adversarial clamps and sees time" (fun () ->
        let d =
          Delay.adversarial ~delta:1e-3 ~eps:1e-4 (fun ~src:_ ~dst:_ ~now ->
              if now > 1. then 0. else 2.)
        in
        check_float "early" 1.1e-3 (Delay.draw d ~src:0 ~dst:1 ~now:0.);
        check_float "late" 0.9e-3 (Delay.draw d ~src:0 ~dst:1 ~now:2.));
    t "rejects delta < eps (A3)" (fun () ->
        check_raises_invalid "a3" (fun () ->
            ignore (Delay.uniform ~delta:1e-4 ~eps:1e-3 ~rng:(Rng.create 1))));
    t "accessors" (fun () ->
        let d = Delay.uniform ~delta:1e-3 ~eps:1e-4 ~rng:(Rng.create 1) in
        check_float "delta" 1e-3 (Delay.delta d);
        check_float "eps" 1e-4 (Delay.eps d));
  ]

let collision_tests =
  [
    t "none admits everything" (fun () ->
        for i = 1 to 100 do
          check_true "admit" (Collision.admit Collision.none ~dst:0 ~now:(float_of_int i))
        done);
    t "bounded buffer drops overflow" (fun () ->
        let c = Collision.bounded_buffer ~n:2 ~capacity:2 ~window:1. in
        check_true "1" (Collision.admit c ~dst:0 ~now:0.);
        check_true "2" (Collision.admit c ~dst:0 ~now:0.1);
        check_bool "3 dropped" false (Collision.admit c ~dst:0 ~now:0.2);
        check_int "dropped" 1 (Collision.dropped c));
    t "window expiry frees capacity" (fun () ->
        let c = Collision.bounded_buffer ~n:1 ~capacity:1 ~window:1. in
        check_true "1" (Collision.admit c ~dst:0 ~now:0.);
        check_bool "2 dropped" false (Collision.admit c ~dst:0 ~now:0.5);
        check_true "3 after window" (Collision.admit c ~dst:0 ~now:1.6));
    t "per-recipient isolation" (fun () ->
        let c = Collision.bounded_buffer ~n:2 ~capacity:1 ~window:1. in
        check_true "dst0" (Collision.admit c ~dst:0 ~now:0.);
        check_true "dst1 unaffected" (Collision.admit c ~dst:1 ~now:0.));
    t "reset" (fun () ->
        let c = Collision.bounded_buffer ~n:1 ~capacity:1 ~window:1. in
        ignore (Collision.admit c ~dst:0 ~now:0.);
        ignore (Collision.admit c ~dst:0 ~now:0.);
        Collision.reset c;
        check_int "dropped cleared" 0 (Collision.dropped c);
        check_true "capacity back" (Collision.admit c ~dst:0 ~now:0.1));
    t "validates arguments" (fun () ->
        check_raises_invalid "n" (fun () ->
            ignore (Collision.bounded_buffer ~n:0 ~capacity:1 ~window:1.)));
  ]

let make_buffer ?(delay = Delay.constant 0.01) ?collision () =
  let engine = Engine.create () in
  let buffer = Mb.create ~n:3 ~delay ?collision ~engine () in
  (engine, buffer)

let buffer_tests =
  [
    t "send delivers after the modelled delay" (fun () ->
        let engine, buffer = make_buffer () in
        Mb.send buffer ~src:0 ~dst:1 "hello";
        (match Engine.next engine with
         | Some (tm, { Mb.src; dst; body = Mb.Msg m; _ }) ->
           check_float "time" 0.01 tm;
           check_int "src" 0 src;
           check_int "dst" 1 dst;
           Alcotest.(check string) "payload" "hello" m
         | _ -> Alcotest.fail "expected delivery");
        check_int "sent" 1 (Mb.sent_count buffer));
    t "broadcast reaches everyone including self" (fun () ->
        let engine, buffer = make_buffer () in
        Mb.broadcast buffer ~src:1 "m";
        let dsts = ref [] in
        Engine.run_until engine ~until:1. ~handler:(fun _ d ->
            dsts := d.Mb.dst :: !dsts);
        Alcotest.(check (list int)) "all" [ 0; 1; 2 ] (List.sort Int.compare !dsts));
    t "start messages" (fun () ->
        let engine, buffer = make_buffer () in
        Mb.schedule_start buffer ~dst:2 ~time:0.5;
        match Engine.next engine with
        | Some (tm, { Mb.body = Mb.Start; dst; _ }) ->
          check_float "time" 0.5 tm;
          check_int "dst" 2 dst
        | _ -> Alcotest.fail "expected START");
    t "timer in the future is placed, in the past dropped" (fun () ->
        let engine, buffer = make_buffer () in
        check_true "future" (Mb.set_timer buffer ~dst:0 ~at_real:1. ~phys_value:42.);
        check_bool "now (not strictly future)" false
          (Mb.set_timer buffer ~dst:0 ~at_real:0. ~phys_value:42.);
        match Engine.next engine with
        | Some (_, { Mb.body = Mb.Timer v; _ }) -> check_float "tag" 42. v
        | _ -> Alcotest.fail "expected timer");
    t "timers deliver after messages at the same instant" (fun () ->
        let engine, buffer = make_buffer ~delay:(Delay.constant 1.) () in
        ignore (Mb.set_timer buffer ~dst:1 ~at_real:1. ~phys_value:0.);
        Mb.send buffer ~src:0 ~dst:1 "m";
        let order = ref [] in
        Engine.run_until engine ~until:2. ~handler:(fun _ d ->
            order :=
              (match d.Mb.body with
               | Mb.Msg _ -> "msg"
               | Mb.Timer _ -> "timer"
               | Mb.Start -> "start")
              :: !order);
        Alcotest.(check (list string)) "property 4" [ "timer"; "msg" ] !order);
    t "collision filter applies to ordinary messages only" (fun () ->
        let collision = Collision.bounded_buffer ~n:3 ~capacity:1 ~window:10. in
        let _, buffer = make_buffer ~collision () in
        let msg body =
          { Mb.src = 0; dst = 1; prov = Csync_obs.Monitor.Prov.null; body }
        in
        check_true "first msg" (Mb.admit buffer (msg (Mb.Msg "a")) ~now:0.);
        check_bool "second dropped" false (Mb.admit buffer (msg (Mb.Msg "b")) ~now:0.1);
        check_true "timer immune" (Mb.admit buffer (msg (Mb.Timer 0.)) ~now:0.2);
        check_true "start immune" (Mb.admit buffer (msg Mb.Start) ~now:0.3);
        check_int "dropped count" 1 (Mb.dropped_count buffer));
    t "pid validation" (fun () ->
        let _, buffer = make_buffer () in
        check_raises_invalid "dst" (fun () -> Mb.send buffer ~src:0 ~dst:9 "x"));
  ]

let signed_tests =
  [
    t "sign and value" (fun () ->
        let s = Signed.sign ~signer:3 42 in
        check_int "value" 42 (Signed.value s);
        check_int "origin" 3 (Signed.origin s);
        check_int "depth" 1 (Signed.depth s);
        check_true "distinct" (Signed.distinct_signers s));
    t "countersign extends the chain in order" (fun () ->
        let s = Signed.countersign ~signer:5 (Signed.sign ~signer:3 1) in
        Alcotest.(check (list int)) "chain" [ 3; 5 ] (Signed.chain s);
        check_int "origin still first" 3 (Signed.origin s);
        check_int "depth" 2 (Signed.depth s));
    t "duplicate signer detected" (fun () ->
        let s = Signed.countersign ~signer:3 (Signed.sign ~signer:3 1) in
        check_bool "dup" false (Signed.distinct_signers s));
    t "signed_by" (fun () ->
        let s = Signed.countersign ~signer:5 (Signed.sign ~signer:3 1) in
        check_true "3" (Signed.signed_by s 3);
        check_true "5" (Signed.signed_by s 5);
        check_bool "7" false (Signed.signed_by s 7));
  ]

let suite = delay_tests @ collision_tests @ buffer_tests @ signed_tests
