(* Tests for the experiment harness: sampling, environment construction,
   scenario determinism and the registry plumbing. *)

module Sampling = Csync_harness.Sampling
module Env = Csync_harness.Env
module Scenario = Csync_harness.Scenario
module Registry = Csync_harness.Registry
module Defaults = Csync_harness.Defaults
module Params = Csync_core.Params
open Helpers

let t name f = Alcotest.test_case name `Quick f

let p = params ()

let sampling_tests =
  [
    t "grid endpoints and spacing" (fun () ->
        let g = Sampling.grid ~from_time:1. ~to_time:3. ~count:5 in
        Alcotest.(check (array (float 1e-12))) "grid" [| 1.; 1.5; 2.; 2.5; 3. |] g;
        check_raises_invalid "count" (fun () ->
            ignore (Sampling.grid ~from_time:0. ~to_time:1. ~count:1)));
    t "observe must be nonempty" (fun () ->
        let clocks = [| Csync_clock.Hardware_clock.create Csync_clock.Drift.perfect |] in
        let proc, _ = Csync_process.Fault.silent () in
        let cluster =
          Csync_process.Cluster.create ~clocks
            ~delay:(Csync_net.Delay.constant 1e-3) ~procs:[| proc |] ()
        in
        check_raises_invalid "empty" (fun () ->
            ignore (Sampling.run ~cluster ~observe:[] ~times:[| 1. |] ())));
    t "skew of identical silent clocks is zero" (fun () ->
        let clocks =
          Array.init 3 (fun _ -> Csync_clock.Hardware_clock.create Csync_clock.Drift.perfect)
        in
        let procs = Array.init 3 (fun _ -> fst (Csync_process.Fault.silent ())) in
        let cluster =
          Csync_process.Cluster.create ~clocks
            ~delay:(Csync_net.Delay.constant 1e-3) ~procs ()
        in
        let s =
          Sampling.run ~cluster ~observe:[ 0; 1; 2 ]
            ~times:(Sampling.grid ~from_time:0. ~to_time:10. ~count:11) ()
        in
        check_float "max skew" 0. (Sampling.max_skew s);
        check_float "steady" 0. (Sampling.steady_skew s));
    t "max_skew respects from_time" (fun () ->
        let clocks =
          [|
            Csync_clock.Hardware_clock.create ~offset:1. Csync_clock.Drift.perfect;
            Csync_clock.Hardware_clock.create Csync_clock.Drift.perfect;
          |]
        in
        (* One clock 1 s ahead: constant skew 1 everywhere; from_time only
           filters which samples count. *)
        let procs = Array.init 2 (fun _ -> fst (Csync_process.Fault.silent ())) in
        let cluster =
          Csync_process.Cluster.create ~clocks
            ~delay:(Csync_net.Delay.constant 1e-3) ~procs ()
        in
        let s =
          Sampling.run ~cluster ~observe:[ 0; 1 ]
            ~times:(Sampling.grid ~from_time:0. ~to_time:10. ~count:11) ()
        in
        check_float "all" 1. (Sampling.max_skew s);
        check_float "after end" 0. (Sampling.max_skew ~from_time:11. s));
  ]

let env_tests =
  [
    t "offsets span [0, spread] over nonfaulty pids" (fun () ->
        let env =
          Env.make ~params:p ~seed:1 ~clock_kind:Env.Drifting
            ~delay_kind:Env.Uniform_delay
            ~is_faulty:(fun pid -> pid >= 5)
            ~offset_spread:4e-4 ~rounds:10
        in
        check_float "tmin0" 0. (Env.tmin0 env);
        check_float "tmax0" 4e-4 (Env.tmax0 env);
        Array.iter
          (fun o -> check_true "within" (o >= 0. && o <= 4e-4))
          env.Env.offsets);
    t "clocks read T0 at their offset" (fun () ->
        let env =
          Env.make ~params:p ~seed:1 ~clock_kind:Env.Perfect
            ~delay_kind:Env.Constant_delay
            ~is_faulty:(fun _ -> false)
            ~offset_spread:4e-4 ~rounds:10
        in
        Array.iteri
          (fun pid clock ->
            check_float_tol 1e-12 "reads T0"
              p.Params.t0
              (Csync_clock.Hardware_clock.time clock env.Env.offsets.(pid)))
          env.Env.clocks);
    t "clocks are rho-bounded" (fun () ->
        let env =
          Env.make ~params:p ~seed:7 ~clock_kind:Env.Drifting
            ~delay_kind:Env.Uniform_delay
            ~is_faulty:(fun _ -> false)
            ~offset_spread:4e-4 ~rounds:10
        in
        Array.iter
          (fun c ->
            check_true "bounded"
              (Csync_clock.Hardware_clock.is_rho_bounded ~rho:p.Params.rho c))
          env.Env.clocks);
    t "every process faulty is rejected" (fun () ->
        check_raises_invalid "all faulty" (fun () ->
            ignore
              (Env.make ~params:p ~seed:1 ~clock_kind:Env.Perfect
                 ~delay_kind:Env.Constant_delay
                 ~is_faulty:(fun _ -> true)
                 ~offset_spread:4e-4 ~rounds:10)));
  ]

let scenario_tests =
  [
    t "same seed, same result" (fun () ->
        let s = { (Scenario.default ~seed:9 p) with Scenario.rounds = 8 } in
        let a = Scenario.run s and b = Scenario.run s in
        check_float "max skew equal" a.Scenario.max_skew b.Scenario.max_skew;
        check_int "messages equal" a.Scenario.messages b.Scenario.messages;
        Alcotest.(check (list (pair int (float 0.))))
          "round spreads equal" a.Scenario.round_spread b.Scenario.round_spread);
    t "different seeds differ" (fun () ->
        let r1 = Scenario.run { (Scenario.default ~seed:1 p) with Scenario.rounds = 6 } in
        let r2 = Scenario.run { (Scenario.default ~seed:2 p) with Scenario.rounds = 6 } in
        check_true "differ" (r1.Scenario.max_skew <> r2.Scenario.max_skew));
    t "validates fault pids and offset spread" (fun () ->
        check_raises_invalid "pid" (fun () ->
            ignore
              (Scenario.run
                 { (Scenario.default p) with Scenario.faults = [ (99, Scenario.Silent) ] }));
        check_raises_invalid "spread" (fun () ->
            ignore
              (Scenario.run
                 { (Scenario.default p) with Scenario.offset_spread = 1. })));
    t "standard faults install exactly f attackers" (fun () ->
        let s = Scenario.with_standard_faults (Scenario.default p) in
        check_int "f faults" p.Params.f (List.length s.Scenario.faults);
        let r = Scenario.run { s with Scenario.rounds = 6 } in
        check_int "n - f observed" (p.Params.n - p.Params.f)
          (List.length r.Scenario.nonfaulty));
    t "round spreads stay within beta" (fun () ->
        let r =
          Scenario.run
            { (Scenario.with_standard_faults (Scenario.default ~seed:4 p)) with
              Scenario.rounds = 10 }
        in
        List.iter
          (fun (i, b) ->
            check_true (Printf.sprintf "B^%d = %g <= beta" i b) (b <= p.Params.beta))
          r.Scenario.round_spread);
    t "tracing records deliveries when enabled" (fun () ->
        let quiet = Scenario.run { (Scenario.default ~seed:4 p) with Scenario.rounds = 4 } in
        check_true "no trace by default" (quiet.Scenario.trace = []);
        let traced =
          Scenario.run
            { (Scenario.default ~seed:4 p) with Scenario.rounds = 4; trace = true }
        in
        check_true "trace recorded" (List.length traced.Scenario.trace > 50);
        (* entries are time-ordered *)
        let times = List.map fst traced.Scenario.trace in
        check_true "ordered" (List.sort Float.compare times = times));
    t "message count matches rounds (honest run)" (fun () ->
        let r = Scenario.run { (Scenario.default ~seed:4 p) with Scenario.rounds = 6 } in
        (* Each process broadcasts n messages per round; rounds+slack. *)
        let per_round = p.Params.n * p.Params.n in
        check_true "plausible volume"
          (r.Scenario.messages >= 6 * per_round
           && r.Scenario.messages <= 10 * per_round));
  ]

let registry_tests =
  [
    t "sixteen experiments, unique ids, E-order" (fun () ->
        check_int "count" 16 (List.length Registry.all);
        let ids = List.map (fun e -> e.Csync_harness.Experiment.id) Registry.all in
        check_int "unique" 16 (List.length (List.sort_uniq String.compare ids));
        check_true "E1 first" (List.hd ids = "E1"));
    t "find is case-insensitive" (fun () ->
        check_true "e10" (Registry.find "e10" <> None);
        check_true "E3" (Registry.find "E3" <> None);
        check_true "unknown" (Registry.find "E99" = None));
    t "defaults construct valid parameter sets" (fun () ->
        let p = Defaults.base () in
        check_true "checked" (Params.check p = []);
        let w = Defaults.wide_beta () in
        check_true "wide checked" (Params.check w = []));
  ]

let pool_tests =
  let module Pool = Csync_harness.Pool in
  [
    t "Pool.init returns results in index order" (fun () ->
        let r = Pool.init ~jobs:4 100 (fun i -> i * i) in
        check_true "values" (Array.for_all Fun.id (Array.mapi (fun i v -> v = i * i) r)));
    t "Pool.init handles jobs > n and n = 0" (fun () ->
        check_int "short" 3 (Array.length (Pool.init ~jobs:64 3 Fun.id));
        check_int "empty" 0 (Array.length (Pool.init ~jobs:4 0 Fun.id));
        check_raises_invalid "jobs" (fun () -> ignore (Pool.init ~jobs:0 1 Fun.id));
        check_raises_invalid "negative n" (fun () ->
            ignore (Pool.init ~jobs:1 (-1) Fun.id)));
    t "Pool.init re-raises a task exception" (fun () ->
        match Pool.init ~jobs:4 8 (fun i -> if i = 5 then failwith "boom" else i) with
        | _ -> Alcotest.fail "expected exception"
        | exception Failure msg -> check_true "message" (msg = "boom"));
    t "CSYNC_JOBS overrides default_jobs" (fun () ->
        Unix.putenv "CSYNC_JOBS" "3";
        let v = Pool.default_jobs () in
        Unix.putenv "CSYNC_JOBS" "";
        check_int "env" 3 v);
  ]

let determinism_tests =
  [
    t "registry output identical at 1 and 4 workers" (fun () ->
        (* The tentpole's contract: the pool only changes wall-clock time,
           never a byte of any table. *)
        let render jobs =
          Format.asprintf "%a"
            (fun ppf () -> Registry.render_all ~jobs ppf ~quick:true)
            ()
        in
        let one = render 1 in
        check_true "nonempty" (String.length one > 0);
        Alcotest.(check string) "jobs=4" one (render 4);
        Alcotest.(check string) "jobs=13" one (render 13));
    t "run_list slices tables per experiment" (fun () ->
        let exps =
          List.filter
            (fun e ->
              List.mem e.Csync_harness.Experiment.id [ "E1"; "E3"; "E5" ])
            Registry.all
        in
        let results = Registry.run_list ~jobs:4 ~quick:true exps in
        check_int "three experiments" 3 (List.length results);
        List.iter2
          (fun e (e', tables) ->
            check_true "same experiment"
              (e.Csync_harness.Experiment.id = e'.Csync_harness.Experiment.id);
            check_true "has tables" (tables <> []))
          exps results);
  ]

let suite =
  sampling_tests @ env_tests @ scenario_tests @ registry_tests @ pool_tests
  @ determinism_tests
