(* Unit tests for the core algorithm modules, driving the automata directly
   through their transition functions (deterministic, no cluster needed)
   plus small end-to-end cluster runs. *)

module Automaton = Csync_process.Automaton
module Cluster = Csync_process.Cluster
module Hw = Csync_clock.Hardware_clock
module Drift = Csync_clock.Drift
module Delay = Csync_net.Delay
module Params = Csync_core.Params
module Averaging = Csync_core.Averaging
module Bounds = Csync_core.Bounds
module Maintenance = Csync_core.Maintenance
module Reintegration = Csync_core.Reintegration
module M = Csync_multiset
open Helpers

let t name f = Alcotest.test_case name `Quick f

let averaging_tests =
  [
    t "midpoint of reduce" (fun () ->
        let u = M.of_list [ -100.; 1.; 2.; 3.; 4.; 5.; 100. ] in
        check_float "mid" 3. (Averaging.apply Averaging.midpoint ~f:1 u));
    t "mean of reduce" (fun () ->
        let u = M.of_list [ -100.; 1.; 2.; 3.; 4.; 5.; 100. ] in
        check_float "mean" 3. (Averaging.apply Averaging.mean ~f:1 u));
    t "median of reduce" (fun () ->
        let u = M.of_list [ -100.; 1.; 2.; 4.; 4.; 5.; 100. ] in
        check_float "median" 4. (Averaging.apply Averaging.median ~f:1 u));
    t "unprotected sees the outliers" (fun () ->
        let u = M.of_list [ -100.; 0.; 100. ] in
        check_float "mid" 0. (Averaging.apply (Averaging.unprotected Averaging.Midpoint) ~f:1 u);
        check_float "mean" 0. (Averaging.apply (Averaging.unprotected Averaging.Mean) ~f:1 u);
        let skewed = M.of_list [ 0.; 1.; 100. ] in
        check_float "mean dragged" 33.666666666666664
          (Averaging.apply (Averaging.unprotected Averaging.Mean) ~f:1 skewed));
    t "convergence rates" (fun () ->
        check_float "midpoint" 0.5 (Averaging.convergence_rate Averaging.midpoint ~n:7 ~f:2);
        check_float "mean" (2. /. 3.) (Averaging.convergence_rate Averaging.mean ~n:7 ~f:2);
        check_float "mean large n" (2. /. 14.)
          (Averaging.convergence_rate Averaging.mean ~n:18 ~f:2);
        check_float "unprotected" 1.
          (Averaging.convergence_rate (Averaging.unprotected Averaging.Mean) ~n:7 ~f:2));
    t "names" (fun () ->
        Alcotest.(check string) "mid" "midpoint" (Averaging.name Averaging.midpoint);
        Alcotest.(check string) "unprot" "mean-unprotected"
          (Averaging.name (Averaging.unprotected Averaging.Mean)));
  ]

let bounds_tests =
  [
    t "maintenance recurrence at rho=0 is b/2 + 2eps" (fun () ->
        check_float "rec" ((0.01 /. 2.) +. 2e-4)
          (Bounds.maintenance_recurrence ~rho:0. ~delta:1e-3 ~eps:1e-4
             ~big_p:0.5 0.01));
    t "maintenance fixpoint at rho=0 is 4 eps" (fun () ->
        check_float_tol 1e-12 "fix" 4e-4
          (Bounds.maintenance_fixpoint ~rho:0. ~delta:1e-3 ~eps:1e-4 ~big_p:0.5));
    t "k-exchange beta decreases in k toward 4eps+2rhoP" (fun () ->
        let b k = Bounds.k_exchange_beta ~rho:1e-5 ~eps:1e-5 ~big_p:5. ~k in
        check_true "monotone" (b 1 > b 2 && b 2 > b 3 && b 3 > b 4);
        check_float_tol 1e-12 "k=1 is 4eps+4rhoP" (4e-5 +. (4. *. 1e-5 *. 5.)) (b 1);
        check_true "limit" (b 8 < (4e-5 +. (2.1 *. 1e-5 *. 5.))));
    t "k-exchange rejects k < 1" (fun () ->
        check_raises_invalid "k" (fun () ->
            ignore (Bounds.k_exchange_beta ~rho:1e-5 ~eps:1e-5 ~big_p:5. ~k:0)));
    t "mean fixpoint approaches 2 eps for large n" (fun () ->
        let fp n = Bounds.mean_fixpoint ~n ~f:2 ~rho:0. ~eps:1e-4 ~big_p:0.5 in
        check_true "decreasing" (fp 7 > fp 30);
        check_true "toward 2eps" (fp 1000 < 2.1e-4));
    t "establishment recurrence and fixpoint" (fun () ->
        let fp = Bounds.establishment_fixpoint ~rho:0. ~delta:1e-3 ~eps:1e-4 in
        check_float_tol 1e-12 "4eps" 4e-4 fp;
        check_float "rec" ((10. /. 2.) +. 2e-4)
          (Bounds.establishment_recurrence ~rho:0. ~delta:1e-3 ~eps:1e-4 10.));
    t "establishment_rounds_to" (fun () ->
        (match Bounds.establishment_rounds_to ~rho:0. ~delta:1e-3 ~eps:1e-4 ~from:10. ~target:0.01 with
         | Some k -> check_true "about log2(1000)" (k >= 9 && k <= 13)
         | None -> Alcotest.fail "should converge");
        check_true "unreachable"
          (Bounds.establishment_rounds_to ~rho:0. ~delta:1e-3 ~eps:1e-4 ~from:10.
             ~target:1e-5
           = None));
    t "section 10 estimates" (fun () ->
        check_float "wl" 4e-4 (Bounds.wl_agreement_estimate ~eps:1e-4);
        check_float "lm" (2. *. 7. *. 1e-4) (Bounds.lm_agreement_estimate ~n:7 ~eps:1e-4);
        check_float "lm adj" (15. *. 1e-4) (Bounds.lm_adjustment_estimate ~n:7 ~eps:1e-4);
        check_float "st" 1.1e-3 (Bounds.st_agreement_estimate ~delta:1e-3 ~eps:1e-4);
        check_float "hssd adj" (3. *. 1.1e-3)
          (Bounds.hssd_adjustment_estimate ~f:2 ~delta:1e-3 ~eps:1e-4);
        check_int "msgs" 49 (Bounds.messages_per_round ~n:7));
  ]

(* Drive the maintenance transition function by hand. *)
let p = params ()

let cfg = Maintenance.config p

let maintenance_unit_tests =
  [
    t "config validation" (fun () ->
        check_raises_invalid "exchanges" (fun () ->
            ignore (Maintenance.config ~exchanges:0 p));
        check_raises_invalid "stagger" (fun () ->
            ignore (Maintenance.config ~stagger:(-1.) p)));
    t "start broadcasts T0 and arms the update timer" (fun () ->
        let auto = Maintenance.automaton ~self_hint:0 cfg in
        let s, actions =
          auto.Automaton.handle ~self:0 ~phys:p.Params.t0 Automaton.Start
            auto.Automaton.initial
        in
        check_true "update phase" (Maintenance.current_phase s = Maintenance.Update);
        match actions with
        | [ Automaton.Broadcast v; Automaton.Set_timer_logical u ] ->
          check_float "broadcasts T0" p.Params.t0 v;
          check_float_tol 1e-12 "U0" (Params.update_time p 0) u
        | _ -> Alcotest.fail "expected broadcast + timer");
    t "messages record stamped local arrival times" (fun () ->
        let auto = Maintenance.automaton ~self_hint:0 cfg in
        let s, _ =
          auto.Automaton.handle ~self:0 ~phys:1.5 (Automaton.Message (3, 0.))
            auto.Automaton.initial
        in
        check_float "arr[3]" 1.5 (Maintenance.arr s).(3);
        check_float "others untouched" Maintenance.arr_sentinel (Maintenance.arr s).(0));
    t "update computes ADJ = T + delta - mid(reduce(ARR))" (fun () ->
        let auto = Maintenance.automaton ~self_hint:0 cfg in
        let s = auto.Automaton.initial in
        (* Broadcast first. *)
        let s, _ = auto.Automaton.handle ~self:0 ~phys:0. Automaton.Start s in
        (* Feed 7 arrivals all at local delta + 2e-4 (everyone 0.2 ms late). *)
        let s =
          List.fold_left
            (fun s q ->
              fst
                (auto.Automaton.handle ~self:0 ~phys:(p.Params.delta +. 2e-4)
                   (Automaton.Message (q, 0.)) s))
            s
            [ 0; 1; 2; 3; 4; 5; 6 ]
        in
        let s, actions =
          auto.Automaton.handle ~self:0 ~phys:(Params.update_time p 0)
            (Automaton.Timer (Params.update_time p 0)) s
        in
        (* AV = delta + 2e-4, so ADJ = T0 + delta - AV = -2e-4. *)
        check_float_tol 1e-12 "corr" (-2e-4) (Maintenance.corr s);
        check_true "back to bcast" (Maintenance.current_phase s = Maintenance.Bcast);
        check_float_tol 1e-12 "T advanced" p.Params.big_p (Maintenance.current_t s);
        check_int "round" 1 (Maintenance.rounds_completed s);
        (match Maintenance.history s with
         | [ r ] ->
           check_float_tol 1e-12 "adj" (-2e-4) r.Maintenance.adj;
           check_int "arrivals" 7 r.Maintenance.arrivals
         | _ -> Alcotest.fail "one history record");
        match actions with
        | [ Automaton.Set_timer_logical next ] ->
          check_float_tol 1e-12 "next bcast" p.Params.big_p next
        | _ -> Alcotest.fail "expected timer");
    t "silent senders are reduced away" (fun () ->
        let auto = Maintenance.automaton ~self_hint:0 cfg in
        let s = auto.Automaton.initial in
        let s, _ = auto.Automaton.handle ~self:0 ~phys:0. Automaton.Start s in
        (* Only 5 of 7 arrive (f = 2 silent). *)
        let s =
          List.fold_left
            (fun s q ->
              fst
                (auto.Automaton.handle ~self:0 ~phys:p.Params.delta
                   (Automaton.Message (q, 0.)) s))
            s [ 0; 1; 2; 3; 4 ]
        in
        let s, _ =
          auto.Automaton.handle ~self:0 ~phys:(Params.update_time p 0)
            (Automaton.Timer (Params.update_time p 0)) s
        in
        (* Sentinels fall in the f lowest; ADJ = 0 exactly. *)
        check_float_tol 1e-12 "corr 0" 0. (Maintenance.corr s));
    t "stagger delays the broadcast to T + p sigma" (fun () ->
        let cfg = Maintenance.config ~stagger:0.01 p in
        let auto = Maintenance.automaton ~self_hint:3 cfg in
        let s, actions =
          auto.Automaton.handle ~self:3 ~phys:p.Params.t0 Automaton.Start
            auto.Automaton.initial
        in
        check_true "still bcast phase" (Maintenance.current_phase s = Maintenance.Bcast);
        match actions with
        | [ Automaton.Set_timer_logical at ] -> check_float "slot" 0.03 at
        | _ -> Alcotest.fail "expected wait for stagger slot");
    t "stagger compensates arrival stamps by sender slot" (fun () ->
        let cfg = Maintenance.config ~stagger:0.01 p in
        let auto = Maintenance.automaton ~self_hint:0 cfg in
        let s, _ =
          auto.Automaton.handle ~self:0 ~phys:2. (Automaton.Message (2, 0.))
            auto.Automaton.initial
        in
        check_float "compensated" (2. -. 0.02) (Maintenance.arr s).(2));
    t "k exchanges advance T by the exchange spacing then rest" (fun () ->
        let big = Params.make_exn ~n:7 ~f:2 ~rho:1e-6 ~delta:1e-3 ~eps:1e-4
            ~beta:4.5e-4 ~big_p:0.5 () in
        let cfg = Maintenance.config ~exchanges:2 big in
        let auto = Maintenance.automaton ~self_hint:0 cfg in
        let s = auto.Automaton.initial in
        let s, _ = auto.Automaton.handle ~self:0 ~phys:0. Automaton.Start s in
        let feed s =
          List.fold_left
            (fun s q ->
              fst
                (auto.Automaton.handle ~self:0
                   ~phys:(Maintenance.current_t s +. big.Params.delta)
                   (Automaton.Message (q, 0.)) s))
            s [ 0; 1; 2; 3; 4; 5; 6 ]
        in
        (* The update only accepts the timer armed at broadcast (tag =
           T + wait window). *)
        let update_tag s = Maintenance.current_t s +. (Params.wait_window big) in
        let s = feed s in
        let s, _ =
          auto.Automaton.handle ~self:0 ~phys:(Params.update_time big 0)
            (Automaton.Timer (update_tag s)) s
        in
        check_int "still round 0" 0 (Maintenance.rounds_completed s);
        let spacing = Maintenance.current_t s in
        check_true "spacing positive and small" (spacing > 0. && spacing < 0.1);
        (* Second exchange completes the round and lands on T0 + P. *)
        let s, _ = auto.Automaton.handle ~self:0 ~phys:spacing (Automaton.Timer 0.) s in
        let s = feed s in
        let s, _ =
          auto.Automaton.handle ~self:0 ~phys:(spacing +. 1e-2)
            (Automaton.Timer (update_tag s)) s
        in
        check_int "round done" 1 (Maintenance.rounds_completed s);
        check_float_tol 1e-12 "T = P" big.Params.big_p (Maintenance.current_t s));
    t "state_for_rejoin resumes cleanly" (fun () ->
        let s = Maintenance.state_for_rejoin cfg ~corr:0.25 ~next_t:5. ~round:10 in
        check_float "corr" 0.25 (Maintenance.corr s);
        check_float "t" 5. (Maintenance.current_t s);
        check_int "round" 10 (Maintenance.rounds_completed s);
        check_true "bcast" (Maintenance.current_phase s = Maintenance.Bcast));
  ]

(* A tiny end-to-end run with perfect clocks and constant delays: ADJ must
   be exactly 0 after the first round and skew exactly the initial offsets. *)
let maintenance_e2e_tests =
  [
    t "perfect clocks, constant delay: zero adjustments" (fun () ->
        let n = p.Params.n in
        let readers = ref [] in
        let procs =
          Array.init n (fun pid ->
              let proc, reader = Maintenance.create ~self:pid cfg in
              readers := reader :: !readers;
              proc)
        in
        let clocks = Array.init n (fun _ -> Hw.create Drift.perfect) in
        let cluster =
          Cluster.create ~clocks ~delay:(Delay.constant p.Params.delta) ~procs ()
        in
        Cluster.schedule_starts_at_logical cluster ~t0:p.Params.t0
          ~corrs:(Array.make n 0.);
        Cluster.run_until cluster (3.2 *. p.Params.big_p);
        List.iter
          (fun reader ->
            let s = reader () in
            check_true "3 rounds" (Maintenance.rounds_completed s >= 3);
            List.iter
              (fun (r : Maintenance.round_record) ->
                check_float_tol 1e-9 "adj 0" 0. r.Maintenance.adj)
              (Maintenance.history s))
          !readers);
    t "known offsets are averaged out in one round" (fun () ->
        (* One clock 0.3 ms behind (within beta; negative so its START at
           c_p(T0) stays at nonnegative real time), perfect rates, constant
           delay: after one update everyone sits at the reduced midpoint. *)
        let n = p.Params.n in
        let offs = [| 0.; -3e-4; 0.; 0.; 0.; 0.; 0. |] in
        let readers = ref [] in
        let procs =
          Array.init n (fun pid ->
              let proc, reader = Maintenance.create ~self:pid cfg in
              readers := (pid, reader) :: !readers;
              proc)
        in
        let clocks = Array.init n (fun pid -> Hw.create ~offset:offs.(pid) Drift.perfect) in
        let cluster =
          Cluster.create ~clocks ~delay:(Delay.constant p.Params.delta) ~procs ()
        in
        Cluster.schedule_starts_at_logical cluster ~t0:p.Params.t0
          ~corrs:(Array.make n 0.);
        Cluster.run_until cluster (1.5 *. p.Params.big_p);
        (* All local times must now agree to ~nanoseconds. *)
        let locals =
          List.map (fun pid -> Cluster.local_time cluster pid) (List.init n Fun.id)
        in
        let lo = List.fold_left Float.min (List.hd locals) locals in
        let hi = List.fold_left Float.max (List.hd locals) locals in
        check_true "converged" (hi -. lo < 1e-7));
  ]

let reintegration_tests =
  [
    t "config validation" (fun () ->
        check_raises_invalid "stagger" (fun () ->
            ignore (Reintegration.config (Maintenance.config ~stagger:0.01 p)));
        check_raises_invalid "exchanges" (fun () ->
            ignore (Reintegration.config (Maintenance.config ~exchanges:2 p))));
    t "needs f+1 distinct senders to pick a target" (fun () ->
        let rcfg = Reintegration.config ~initial_corr:0.5 cfg in
        let auto = Reintegration.automaton ~self_hint:5 rcfg in
        let s = auto.Automaton.initial in
        let s, _ = auto.Automaton.handle ~self:5 ~phys:0. Automaton.Start s in
        (* One lying sender repeating a bogus round value: no target. *)
        let s, _ = auto.Automaton.handle ~self:5 ~phys:0.1 (Automaton.Message (6, 99.)) s in
        let s, _ = auto.Automaton.handle ~self:5 ~phys:0.2 (Automaton.Message (6, 99.)) s in
        check_true "still observing" (Reintegration.mode s = Reintegration.Observing);
        (* f+1 = 3 distinct honest senders naming round value 1.0. *)
        let s, _ = auto.Automaton.handle ~self:5 ~phys:0.3 (Automaton.Message (0, 1.0)) s in
        let s, _ = auto.Automaton.handle ~self:5 ~phys:0.3 (Automaton.Message (1, 1.0)) s in
        let s, _ = auto.Automaton.handle ~self:5 ~phys:0.3 (Automaton.Message (2, 1.0)) s in
        check_true "collecting" (Reintegration.mode s = Reintegration.Collecting);
        check_true "target is successor round"
          (Reintegration.target s = Some (1.0 +. p.Params.big_p)));
    t "collects the target round, averages, and joins" (fun () ->
        let rcfg = Reintegration.config ~initial_corr:0.5 cfg in
        let auto = Reintegration.automaton ~self_hint:5 rcfg in
        let s = auto.Automaton.initial in
        let s, _ = auto.Automaton.handle ~self:5 ~phys:0. Automaton.Start s in
        let feed s phys (q, v) =
          fst (auto.Automaton.handle ~self:5 ~phys (Automaton.Message (q, v)) s)
        in
        let s = feed s 0.30 (0, 1.0) in
        let s = feed s 0.30 (1, 1.0) in
        let s = feed s 0.30 (2, 1.0) in
        (* Target = 1.5.  Deliver the target round's messages: arrivals at
           phys 0.9 + delta-ish; the collect deadline is anchored on the
           (f+1)-th distinct sender (here the third, at 0.9012) and the
           timer then fires. *)
        let target = 1.0 +. p.Params.big_p in
        let s = feed s 0.901 (0, target) in
        let s = feed s 0.9011 (1, target) in
        let s = feed s 0.9012 (2, target) in
        let s = feed s 0.9013 (3, target) in
        let s = feed s 0.9014 (4, target) in
        let deadline = 0.9012 +. Reintegration.collect_window p in
        let s, actions =
          auto.Automaton.handle ~self:5 ~phys:deadline (Automaton.Timer deadline) s
        in
        check_true "joined" (Reintegration.mode s = Reintegration.Joined);
        check_true "join round recorded" (Reintegration.join_round s <> None);
        (* The arbitrary initial correction cancels: the final correction
           is target + delta - (real arrival time), independent of 0.5. *)
        check_true "corr corrected"
          (Float.abs (Reintegration.corr s -. (target +. p.Params.delta -. 0.901))
           < 1e-3);
        match actions with
        | [ Automaton.Set_timer_logical next ] ->
          check_float_tol 1e-9 "next round timer" (target +. p.Params.big_p) next
        | _ -> Alcotest.fail "expected join timer");
  ]

let suite =
  averaging_tests @ bounds_tests @ maintenance_unit_tests @ maintenance_e2e_tests
  @ reintegration_tests
