(* Unit and property tests for the multiset machinery, including the
   Appendix lemmas (21-24) that underpin Lemma 9. *)

module M = Csync_multiset
open Helpers

let t name f = Alcotest.test_case name `Quick f

let unit_tests =
  [
    t "of_list sorts" (fun () ->
        Alcotest.(check (list (float 0.)))
          "sorted" [ 1.; 2.; 3. ]
          (M.to_list (M.of_list [ 3.; 1.; 2. ])));
    t "of_array does not mutate input" (fun () ->
        let a = [| 3.; 1.; 2. |] in
        ignore (M.of_array a);
        Alcotest.(check (array (float 0.))) "unchanged" [| 3.; 1.; 2. |] a);
    t "duplicates preserved" (fun () ->
        check_int "size" 4 (M.size (M.of_list [ 1.; 1.; 2.; 1. ])));
    t "empty basics" (fun () ->
        check_true "is_empty" (M.is_empty M.empty);
        check_int "size" 0 (M.size M.empty);
        check_float "diameter" 0. (M.diameter M.empty));
    t "min max nth" (fun () ->
        let u = M.of_list [ 5.; -1.; 3. ] in
        check_float "min" (-1.) (M.min_elt u);
        check_float "max" 5. (M.max_elt u);
        check_float "nth 1" 3. (M.nth u 1));
    t "min/max/mid on empty raise" (fun () ->
        check_raises_invalid "min" (fun () -> M.min_elt M.empty);
        check_raises_invalid "max" (fun () -> M.max_elt M.empty);
        check_raises_invalid "mid" (fun () -> M.mid M.empty);
        check_raises_invalid "mean" (fun () -> M.mean M.empty);
        check_raises_invalid "median" (fun () -> M.median M.empty));
    t "nth out of range raises" (fun () ->
        check_raises_invalid "nth" (fun () -> M.nth (M.singleton 1.) 1));
    t "diameter" (fun () ->
        check_float "diam" 6. (M.diameter (M.of_list [ -1.; 2.; 5. ])));
    t "mid is midpoint of range" (fun () ->
        check_float "mid" 2. (M.mid (M.of_list [ -1.; 0.; 5. ])));
    t "mean" (fun () -> check_float "mean" 2. (M.mean (M.of_list [ 1.; 2.; 3. ])));
    t "median odd" (fun () ->
        check_float "median" 2. (M.median (M.of_list [ 9.; 2.; 1. ])));
    t "median even" (fun () ->
        check_float "median" 2.5 (M.median (M.of_list [ 1.; 2.; 3.; 9. ])));
    t "drop lowest/highest" (fun () ->
        let u = M.of_list [ 1.; 2.; 3. ] in
        Alcotest.(check (list (float 0.))) "s(U)" [ 2.; 3. ] (M.to_list (M.drop_lowest u));
        Alcotest.(check (list (float 0.))) "l(U)" [ 1.; 2. ] (M.to_list (M.drop_highest u)));
    t "drop on empty is identity" (fun () ->
        check_true "s" (M.is_empty (M.drop_lowest M.empty));
        check_true "l" (M.is_empty (M.drop_highest M.empty)));
    t "reduce drops f highest and lowest" (fun () ->
        let u = M.of_list [ 1.; 2.; 3.; 4.; 5.; 6.; 7. ] in
        Alcotest.(check (list (float 0.)))
          "reduced" [ 3.; 4.; 5. ]
          (M.to_list (M.reduce ~f:2 u)));
    t "reduce f=0 is identity" (fun () ->
        let u = M.of_list [ 2.; 1. ] in
        check_true "eq" (M.equal u (M.reduce ~f:0 u)));
    t "reduce errors" (fun () ->
        check_raises_invalid "negative" (fun () -> M.reduce ~f:(-1) M.empty);
        check_raises_invalid "too small" (fun () ->
            M.reduce ~f:2 (M.of_list [ 1.; 2.; 3. ])));
    t "add keeps order" (fun () ->
        let u = M.add 2.5 (M.of_list [ 1.; 2.; 3. ]) in
        Alcotest.(check (list (float 0.))) "inserted" [ 1.; 2.; 2.5; 3. ] (M.to_list u));
    t "add at ends" (fun () ->
        Alcotest.(check (list (float 0.)))
          "front" [ 0.; 1. ]
          (M.to_list (M.add 0. (M.singleton 1.)));
        Alcotest.(check (list (float 0.)))
          "back" [ 1.; 2. ]
          (M.to_list (M.add 2. (M.singleton 1.))));
    t "union merges sorted" (fun () ->
        let u = M.union (M.of_list [ 1.; 3. ]) (M.of_list [ 2.; 4. ]) in
        Alcotest.(check (list (float 0.))) "merged" [ 1.; 2.; 3.; 4. ] (M.to_list u));
    t "add_scalar shifts" (fun () ->
        Alcotest.(check (list (float 0.)))
          "shifted" [ 2.; 3. ]
          (M.to_list (M.add_scalar (M.of_list [ 1.; 2. ]) 1.)));
    t "count and mem_within" (fun () ->
        let u = M.of_list [ 1.; 2.; 3. ] in
        check_int "count" 2 (M.count (fun x -> x >= 2.) u);
        check_true "mem" (M.mem_within u ~value:2.05 ~tol:0.1);
        check_true "not mem" (not (M.mem_within u ~value:2.5 ~tol:0.1)));
    t "max_pairing basic" (fun () ->
        let u = M.of_list [ 0.; 10. ] and v = M.of_list [ 0.5; 9.5 ] in
        check_int "pairs" 2 (M.max_pairing ~x:1. u v);
        check_int "pairs tight" 0 (M.max_pairing ~x:0.1 u v));
    t "x_distance" (fun () ->
        let u = M.of_list [ 0.; 10. ] and v = M.of_list [ 0.5; 20. ] in
        check_int "d_x" 1 (M.x_distance ~x:1. u v);
        check_raises_invalid "size order" (fun () ->
            M.x_distance ~x:1. (M.of_list [ 1.; 2.; 3. ]) (M.of_list [ 1. ])));
    t "equal and compare" (fun () ->
        let u = M.of_list [ 1.; 2. ] in
        check_true "equal" (M.equal u (M.of_list [ 2.; 1. ]));
        check_true "compare size" (M.compare u (M.of_list [ 1. ]) > 0);
        check_true "compare lex" (M.compare u (M.of_list [ 1.; 3. ]) < 0));
  ]

(* Generators for property tests. *)
let gen_floats =
  QCheck2.Gen.(list_size (int_range 1 40) (float_bound_inclusive 100.))

let gen_floats_and_scalar = QCheck2.Gen.pair gen_floats QCheck2.Gen.(float_bound_inclusive 10.)

let prop_tests =
  [
    qcheck ~name:"to_list is sorted" gen_floats (fun l ->
        let sorted = M.to_list (M.of_list l) in
        List.sort Float.compare sorted = sorted);
    qcheck ~name:"size preserved" gen_floats (fun l ->
        M.size (M.of_list l) = List.length l);
    qcheck ~name:"mid within [min, max]" gen_floats (fun l ->
        let u = M.of_list l in
        M.min_elt u <= M.mid u && M.mid u <= M.max_elt u);
    qcheck ~name:"mean within [min, max]" gen_floats (fun l ->
        let u = M.of_list l in
        M.min_elt u -. 1e-9 <= M.mean u && M.mean u <= M.max_elt u +. 1e-9);
    qcheck ~name:"median within [min, max]" gen_floats (fun l ->
        let u = M.of_list l in
        M.min_elt u <= M.median u && M.median u <= M.max_elt u);
    qcheck ~name:"mid commutes with add_scalar" gen_floats_and_scalar
      (fun (l, r) ->
        let u = M.of_list l in
        Float.abs (M.mid (M.add_scalar u r) -. (M.mid u +. r)) < 1e-9);
    qcheck ~name:"reduce commutes with add_scalar" gen_floats_and_scalar
      (fun (l, r) ->
        let l = l @ [ 1.; 2.; 3. ] in
        let u = M.of_list l in
        M.equal
          (M.reduce ~f:1 (M.add_scalar u r))
          (M.add_scalar (M.reduce ~f:1 u) r));
    qcheck ~name:"diameter shrinks under reduce" gen_floats (fun l ->
        let l = l @ [ 0.; 50. ] in
        let u = M.of_list l in
        M.diameter (M.reduce ~f:1 u) <= M.diameter u);
    qcheck ~name:"union size adds" (QCheck2.Gen.pair gen_floats gen_floats)
      (fun (a, b) ->
        M.size (M.union (M.of_list a) (M.of_list b))
        = List.length a + List.length b);
    qcheck ~name:"union is sorted" (QCheck2.Gen.pair gen_floats gen_floats)
      (fun (a, b) ->
        let l = M.to_list (M.union (M.of_list a) (M.of_list b)) in
        List.sort Float.compare l = l);
    qcheck ~name:"max_pairing bounded by sizes"
      (QCheck2.Gen.pair gen_floats gen_floats) (fun (a, b) ->
        let u = M.of_list a and v = M.of_list b in
        let p = M.max_pairing ~x:1. u v in
        p <= M.size u && p <= M.size v);
    qcheck ~name:"x_distance zero iff all pairable within x" gen_floats
      (fun l ->
        let u = M.of_list l in
        M.x_distance ~x:0. u u = 0);
  ]

(* Appendix lemma properties.  W is a multiset of "honest" values; U and V
   perturb each honest value by at most x and append up to f arbitrary
   values - exactly the d_x(W, U) = 0 hypothesis shape. *)
let gen_lemma_instance =
  let open QCheck2.Gen in
  let* f = int_range 1 3 in
  let* honest_extra = int_range (f + 1) 10 in
  let n_honest = (2 * f) + honest_extra in
  (* n >= 3f + 1 *)
  let* w = list_size (return n_honest) (float_bound_inclusive 10.) in
  let* x = float_bound_inclusive 0.5 in
  let* noise_u = list_size (return n_honest) (float_bound_inclusive 1.) in
  let* noise_v = list_size (return n_honest) (float_bound_inclusive 1.) in
  let* byz_u = list_size (return f) (float_bound_inclusive 100.) in
  let* byz_v = list_size (return f) (float_bound_inclusive 100.) in
  let perturb values noise =
    List.map2 (fun w n -> w +. ((n -. 0.5) *. 2. *. x)) values noise
  in
  return (f, x, w, perturb w noise_u @ byz_u, perturb w noise_v @ byz_v)

let lemma_tests =
  [
    qcheck ~count:500 ~name:"Lemma 21: reduce(U) within W's range +- x"
      gen_lemma_instance (fun (f, x, w, u, _) ->
        let w = M.of_list w and u = M.of_list u in
        let r = M.reduce ~f u in
        M.max_elt r <= M.max_elt w +. x +. 1e-9
        && M.min_elt r >= M.min_elt w -. x -. 1e-9);
    qcheck ~count:500 ~name:"Lemma 22: x-distance not increased by drops"
      gen_lemma_instance (fun (_, x, w, u, _) ->
        let w = M.of_list w and u = M.of_list u in
        (* |W| <= |U| by construction *)
        M.x_distance ~x (M.drop_lowest w) (M.drop_lowest u)
        <= M.x_distance ~x w u
        && M.x_distance ~x (M.drop_highest w) (M.drop_highest u)
           <= M.x_distance ~x w u);
    qcheck ~count:500 ~name:"Lemma 23: reduced ranges overlap within 2x"
      gen_lemma_instance (fun (f, x, w, u, v) ->
        ignore w;
        let u = M.of_list u and v = M.of_list v in
        M.min_elt (M.reduce ~f u) -. M.max_elt (M.reduce ~f v) <= (2. *. x) +. 1e-9);
    qcheck ~count:500
      ~name:"Lemma 24: |mid(reduce U) - mid(reduce V)| <= diam(W)/2 + 2x"
      gen_lemma_instance (fun (f, x, w, u, v) ->
        let w = M.of_list w and u = M.of_list u and v = M.of_list v in
        Float.abs (M.mid (M.reduce ~f u) -. M.mid (M.reduce ~f v))
        <= (M.diameter w /. 2.) +. (2. *. x) +. 1e-9);
  ]

(* The fused reduce-and-average variants and the scratch-buffer operations
   must agree exactly (same floats, same elements) with the allocating
   compositions they replace. *)
let gen_reducible =
  let open QCheck2.Gen in
  let* f = int_range 0 4 in
  let* extra = int_range 1 30 in
  let* l = list_size (return ((2 * f) + extra)) (float_bound_inclusive 100.) in
  return (f, l)

let fused_tests =
  [
    qcheck ~name:"mid_reduced = mid o reduce" gen_reducible (fun (f, l) ->
        let u = M.of_list l in
        M.mid_reduced ~f u = M.mid (M.reduce ~f u));
    qcheck ~name:"mean_reduced = mean o reduce" gen_reducible (fun (f, l) ->
        let u = M.of_list l in
        Float.abs (M.mean_reduced ~f u -. M.mean (M.reduce ~f u)) <= 1e-12);
    qcheck ~name:"median_reduced = median o reduce" gen_reducible
      (fun (f, l) ->
        let u = M.of_list l in
        M.median_reduced ~f u = M.median (M.reduce ~f u));
    t "fused variants validate like reduce-then-average" (fun () ->
        let u = M.of_list [ 1.; 2.; 3.; 4. ] in
        check_raises_invalid "negative f" (fun () -> M.mid_reduced ~f:(-1) u);
        check_raises_invalid "too small" (fun () -> M.mid_reduced ~f:3 u);
        check_raises_invalid "empty after reduction" (fun () ->
            M.mid_reduced ~f:2 u);
        check_raises_invalid "mean empty" (fun () -> M.mean_reduced ~f:2 u);
        check_raises_invalid "median empty" (fun () -> M.median_reduced ~f:2 u));
  ]

let scratch_tests =
  [
    qcheck ~name:"Scratch.sorted_of_array = of_array" gen_floats (fun l ->
        let a = Array.of_list l in
        let buf = M.Scratch.create () in
        M.equal (M.Scratch.sorted_of_array buf a) (M.of_array a));
    qcheck ~name:"Scratch.sorted_of_array does not mutate input" gen_floats
      (fun l ->
        let a = Array.of_list l in
        let copy = Array.copy a in
        let buf = M.Scratch.create () in
        ignore (M.Scratch.sorted_of_array buf a);
        a = copy);
    qcheck ~name:"Scratch.add_scalar = add_scalar" gen_floats_and_scalar
      (fun (l, r) ->
        let u = M.of_list l in
        let buf = M.Scratch.create () in
        M.equal (M.Scratch.add_scalar buf u r) (M.add_scalar u r));
    qcheck ~name:"Scratch.union = union" (QCheck2.Gen.pair gen_floats gen_floats)
      (fun (a, b) ->
        let u = M.of_list a and v = M.of_list b in
        let buf = M.Scratch.create () in
        M.equal (M.Scratch.union buf u v) (M.union u v));
    qcheck ~name:"Scratch reuse across calls stays correct" gen_floats
      (fun l ->
        (* Same buffer, same size, repeated calls - the reuse path. *)
        let a = Array.of_list l in
        let buf = M.Scratch.create () in
        let first = M.to_list (M.Scratch.sorted_of_array buf a) in
        let second = M.to_list (M.Scratch.sorted_of_array buf a) in
        first = second && first = M.to_list (M.of_array a));
    t "Scratch.union tolerates aliased input" (fun () ->
        let buf = M.Scratch.create () in
        (* add_scalar leaves its result in the buffer's backing store; a
           union with the empty multiset then wants an output of the same
           size, so the buffer is handed back as output while also being
           the input - the aliasing guard must copy first. *)
        let v = M.Scratch.add_scalar buf (M.of_list [ 3.; 1. ]) 1. in
        let w = M.Scratch.union buf v M.empty in
        Alcotest.(check (list (float 0.))) "left" [ 2.; 4. ] (M.to_list w);
        let v = M.Scratch.add_scalar buf (M.of_list [ 5.; 2. ]) 0. in
        let w = M.Scratch.union buf M.empty v in
        Alcotest.(check (list (float 0.))) "right" [ 2.; 5. ] (M.to_list w));
  ]

let suite = unit_tests @ prop_tests @ lemma_tests @ fused_tests @ scratch_tests
