(* Cross-cutting property tests: randomized invariants over the substrate
   and the algorithms, complementing the per-module unit suites. *)

module M = Csync_multiset
module Engine = Csync_sim.Engine
module Rng = Csync_sim.Rng
module Params = Csync_core.Params
module Maintenance = Csync_core.Maintenance
module Smoothing = Csync_core.Smoothing
module Approx = Csync_core.Approx_agreement
module Marzullo = Csync_baselines.Marzullo
module Scenario = Csync_harness.Scenario
open Helpers

let p = params ()

let engine_props =
  [
    qcheck ~count:100 ~name:"engine delivers in nondecreasing time order"
      QCheck2.Gen.(list_size (int_range 1 100) (float_bound_inclusive 100.))
      (fun times ->
        let e = Engine.create () in
        List.iter (fun tm -> Engine.schedule e ~time:tm tm) times;
        let last = ref neg_infinity in
        let ok = ref true in
        ignore
          (Engine.drain e
             ~handler:(fun tm _ ->
               if tm < !last then ok := false;
               last := tm)
             ~max_events:1000);
        !ok);
    qcheck ~count:100 ~name:"engine delivers every scheduled event exactly once"
      QCheck2.Gen.(list_size (int_range 1 100) (float_bound_inclusive 100.))
      (fun times ->
        let e = Engine.create () in
        List.iteri (fun i tm -> Engine.schedule e ~time:tm i) times;
        let seen = Hashtbl.create 16 in
        ignore
          (Engine.drain e
             ~handler:(fun _ i -> Hashtbl.replace seen i ())
             ~max_events:1000);
        Hashtbl.length seen = List.length times);
  ]

let multiset_props =
  [
    qcheck ~name:"reduce yields a sub-multiset"
      QCheck2.Gen.(list_size (int_range 3 30) (float_bound_inclusive 10.))
      (fun l ->
        let u = M.of_list l in
        let r = M.reduce ~f:1 u in
        (* every element of r appears in u with at least its multiplicity *)
        List.for_all
          (fun x -> M.count (fun y -> y = x) r <= M.count (fun y -> y = x) u)
          (M.to_list r));
    qcheck ~name:"mid(reduce) lies within the original range"
      QCheck2.Gen.(list_size (int_range 3 30) (float_bound_inclusive 10.))
      (fun l ->
        let u = M.of_list l in
        let v = M.mid (M.reduce ~f:1 u) in
        M.min_elt u <= v && v <= M.max_elt u);
  ]

let params_props =
  [
    qcheck ~count:100 ~name:"p_min is monotone in beta"
      QCheck2.Gen.(pair (float_range 1e-4 1e-2) (float_range 1e-4 1e-2))
      (fun (b1, b2) ->
        let lo = Float.min b1 b2 and hi = Float.max b1 b2 in
        Params.p_min ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~beta:lo
        <= Params.p_min ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~beta:hi);
    qcheck ~count:100 ~name:"gamma exceeds beta (skew bound covers start skew)"
      QCheck2.Gen.(float_range 1e-4 1e-2)
      (fun beta ->
        let p =
          Params.unchecked ~n:7 ~f:2 ~rho:1e-6 ~delta:1e-3 ~eps:1e-4 ~beta
            ~big_p:0.5 ()
        in
        Params.gamma p > beta);
  ]

let marzullo_props =
  [
    qcheck ~count:200 ~name:"no sampled point beats best_interval's support"
      QCheck2.Gen.(
        list_size (int_range 1 10)
          (map
             (fun (a, b) -> (Float.min a b, Float.max a b))
             (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.))))
      (fun intervals ->
        let count, _ = Marzullo.best_interval intervals in
        let coverage x =
          List.length (List.filter (fun (lo, hi) -> lo <= x && x <= hi) intervals)
        in
        (* sample all endpoints: maxima occur there *)
        List.for_all
          (fun (lo, hi) -> coverage lo <= count && coverage hi <= count)
          intervals);
  ]

let smoothing_props =
  [
    qcheck ~count:100 ~name:"smoothed time is monotone for admissible jumps"
      QCheck2.Gen.(
        list_size (int_range 1 10)
          (pair (float_range 0.5 1.5) (float_range (-0.4) 0.4)))
      (fun jumps ->
        (* jumps: (gap to next jump, adjustment).  Gaps >= the slew interval
           (0.5) and |adj| < interval: the protocol's regime (one adjustment
           per round of length P, slewed over P, |ADJ| << P).  Overlapping
           negative slews may legitimately sum past the interval and lose
           monotonicity, which is why of_params slews over a full P. *)
        (* Walk the timeline forward, observing each jump as its instant
           passes and sampling in between - the module's intended usage
           (queries are only valid at or after the latest observation). *)
        let events =
          List.rev
            (snd
               (List.fold_left
                  (fun (at, evs) (gap, adj) ->
                    let at = at +. gap in
                    (at, (at, adj) :: evs))
                  (0., []) jumps))
        in
        let ok = ref true in
        let prev = ref neg_infinity in
        let s = ref (Smoothing.create ~slew_interval:0.5) in
        let corr = ref 0. in
        let pending = ref events in
        for i = 0 to 400 do
          let phys = float_of_int i /. 20. in
          (match !pending with
           | (at, adj) :: rest when at <= phys ->
             s := Smoothing.observe !s ~at_phys:at ~adj;
             corr := !corr +. adj;
             pending := rest
           | _ -> ());
          let now = Smoothing.time !s ~phys ~corr:!corr in
          if now < !prev -. 1e-12 then ok := false;
          prev := now
        done;
        !ok);
  ]

let approx_props =
  [
    qcheck ~count:100 ~name:"approximate agreement: validity + halving"
      QCheck2.Gen.(
        pair
          (list_size (int_range 5 5) (float_bound_inclusive 100.))
          (int_range 0 1000))
      (fun (initial, seed) ->
        let initial = Array.of_list initial in
        let rng = Rng.create seed in
        let adversary ~round:_ ~faulty:_ ~target:_ =
          if Rng.bool rng then Some (Rng.uniform rng ~lo:(-200.) ~hi:200.)
          else None
        in
        let r = Approx.run ~n:7 ~f:2 ~rounds:6 ~adversary ~initial () in
        let lo = Array.fold_left Float.min initial.(0) initial in
        let hi = Array.fold_left Float.max initial.(0) initial in
        let diam0 = hi -. lo in
        let validity = Array.for_all (fun v -> lo <= v && v <= hi) r.Approx.final in
        let halving =
          List.for_all2
            (fun d prev -> d <= (prev /. 2.) +. 1e-9)
            r.Approx.diameters
            (diam0 :: List.filteri (fun i _ -> i < 5) r.Approx.diameters)
        in
        validity && halving);
  ]

(* Liveness: honest maintenance runs never wedge, whatever the seed and
   delay/drift profile. *)
let liveness_props =
  [
    qcheck ~count:12 ~name:"honest runs complete every round (no wedging)"
      QCheck2.Gen.(
        triple (int_range 0 10_000) (int_range 0 2) (int_range 0 2))
      (fun (seed, delay_i, clock_i) ->
        let delay_kind =
          List.nth
            [ Scenario.Constant_delay; Scenario.Uniform_delay; Scenario.Extreme_delay ]
            delay_i
        in
        let clock_kind =
          List.nth
            [ Scenario.Perfect; Scenario.Drifting; Scenario.Adversarial_drift ]
            clock_i
        in
        let rounds = 8 in
        let r =
          Scenario.run
            { (Scenario.default ~seed p) with Scenario.rounds; delay_kind; clock_kind }
        in
        List.for_all
          (fun (_, records) -> List.length records >= rounds)
          r.Scenario.histories);
  ]

let suite =
  engine_props @ multiset_props @ params_props @ marzullo_props
  @ smoothing_props @ approx_props @ liveness_props
