(* End-to-end invariants: the paper's guarantees, checked across seeds and
   configurations.  These are the repository's acceptance tests - every
   theorem-level property must hold on every run. *)

module Scenario = Csync_harness.Scenario
module Params = Csync_core.Params
module Stats = Csync_metrics.Stats
open Helpers

let t name f = Alcotest.test_case name `Quick f

let p = params ()

let run_with_faults ~seed ~delay_kind ~clock_kind =
  Scenario.run
    {
      (Scenario.with_standard_faults (Scenario.default ~seed p)) with
      Scenario.rounds = 15;
      delay_kind;
      clock_kind;
    }

let gen_seed = QCheck2.Gen.int_range 0 10_000

let agreement_tests =
  [
    qcheck ~count:15 ~name:"Theorem 16: skew <= gamma across seeds" gen_seed
      (fun seed ->
        let r =
          run_with_faults ~seed ~delay_kind:Scenario.Extreme_delay
            ~clock_kind:Scenario.Drifting
        in
        r.Scenario.max_skew <= Params.gamma p);
    qcheck ~count:10 ~name:"Lemma 7: every |ADJ| within bound across seeds"
      gen_seed (fun seed ->
        let r =
          run_with_faults ~seed ~delay_kind:Scenario.Uniform_delay
            ~clock_kind:Scenario.Adversarial_drift
        in
        Stats.maximum r.Scenario.adjustments <= Params.adjustment_bound p);
    qcheck ~count:10 ~name:"Theorem 4(c): B^i <= beta across seeds" gen_seed
      (fun seed ->
        let r =
          run_with_faults ~seed ~delay_kind:Scenario.Extreme_delay
            ~clock_kind:Scenario.Adversarial_drift
        in
        List.for_all (fun (_, b) -> b <= p.Params.beta) r.Scenario.round_spread);
    qcheck ~count:10 ~name:"Theorem 19: validity envelope across seeds" gen_seed
      (fun seed ->
        let r =
          run_with_faults ~seed ~delay_kind:Scenario.Uniform_delay
            ~clock_kind:Scenario.Drifting
        in
        r.Scenario.validity = `Holds);
  ]

let variant_tests =
  [
    t "all averaging variants keep agreement under the standard cast" (fun () ->
        List.iter
          (fun averaging ->
            let r =
              Scenario.run
                {
                  (Scenario.with_standard_faults (Scenario.default ~seed:5 p)) with
                  Scenario.rounds = 12;
                  averaging;
                }
            in
            check_true
              (Csync_core.Averaging.name averaging)
              (r.Scenario.max_skew <= Params.gamma p))
          [ Csync_core.Averaging.midpoint; Csync_core.Averaging.mean;
            Csync_core.Averaging.median ]);
    t "k-exchange variant synchronizes" (fun () ->
        let r =
          Scenario.run
            { (Scenario.default ~seed:5 p) with Scenario.rounds = 8; exchanges = 3 }
        in
        check_true "skew small" (r.Scenario.steady_skew <= Params.gamma p));
    t "staggered broadcasts synchronize" (fun () ->
        let r =
          Scenario.run
            {
              (Scenario.default ~seed:5 p) with
              Scenario.rounds = 10;
              stagger = 4. *. p.Params.eps;
            }
        in
        check_true "skew small" (r.Scenario.steady_skew <= Params.gamma p));
    t "every fault strategy is survivable" (fun () ->
        let n = p.Params.n in
        List.iter
          (fun (label, spec) ->
            let r =
              Scenario.run
                {
                  (Scenario.default ~seed:6 p) with
                  Scenario.rounds = 10;
                  faults = [ (n - 1, spec); (n - 2, Scenario.Silent) ];
                }
            in
            check_true label (r.Scenario.max_skew <= Params.gamma p))
          [
            ("silent", Scenario.Silent);
            ("pull", Scenario.Pull (2. *. p.Params.beta));
            ("two-faced", Scenario.Two_faced { spread = p.Params.beta; split = 3 });
            ("adaptive", Scenario.Adaptive_two_faced { split = 3; faulty_from = 5 });
            ("jitter", Scenario.Jitter (3. *. p.Params.beta));
            ("flood", Scenario.Flood 4);
            ("lying", Scenario.Lying 10.);
            ( "late-two-faced",
              Scenario.Two_faced_late
                { offset_a = p.Params.eps; offset_b = p.Params.beta; split = 3 } );
          ]);
    t "reintegration rejoins within gamma" (fun () ->
        let module R = Csync_harness.Runner_reintegration in
        let r = R.run (R.default ~seed:8 p) in
        check_true "joined" (r.R.join_round <> None);
        check_true "post-join agreement" (r.R.post_join_skew <= Params.gamma p);
        check_true "woke far off" (r.R.wake_offset > 100. *. Params.gamma p));
    t "establishment reaches the maintenance regime" (fun () ->
        let module R = Csync_harness.Runner_establishment in
        let r =
          R.run
            (R.with_standard_faults
               { (R.default ~seed:8 ~initial_spread:50. p) with R.rounds = 25 })
        in
        check_true "converged to ~4 eps"
          (r.R.final_b
           <= 2.
              *. Csync_core.Bounds.establishment_fixpoint ~rho:p.Params.rho
                   ~delta:p.Params.delta ~eps:p.Params.eps));
  ]

let experiment_smoke_tests =
  (* Every registered experiment must run (quick mode) and produce
     well-formed, nonempty tables. *)
  List.map
    (fun e ->
      t (Printf.sprintf "experiment %s runs" e.Csync_harness.Experiment.id)
        (fun () ->
          let tables = Csync_harness.Experiment.run ~quick:true e in
          check_true "has tables" (tables <> []);
          List.iter
            (fun tbl ->
              check_true "has rows" (Csync_metrics.Table.rows tbl <> []);
              (* Rendering must not raise. *)
              ignore (Format.asprintf "%a" Csync_metrics.Table.render tbl))
            tables))
    Csync_harness.Registry.all

let suite = agreement_tests @ variant_tests @ experiment_smoke_tests
