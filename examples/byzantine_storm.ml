(* Byzantine storm: every attacker in the library at once, and the 3f+1
   cliff edge.

   Part 1 runs n = 10, f = 3 with a mixed adversarial cast (a silent
   process, a flooding spammer, and an adaptive two-faced timing attacker)
   on adversarially drifting clocks and worst-case delays, and shows the
   skew staying under gamma.

   Part 2 re-runs the strongest attack with one honest process removed
   (n = 3f) and shows the guarantee dissolving - the [DHS] impossibility
   made visible.

   Run with:  dune exec examples/byzantine_storm.exe *)

module Params = Csync_core.Params
module Scenario = Csync_harness.Scenario
module Stats = Csync_metrics.Stats

let run_storm () =
  let params = Csync_harness.Defaults.base ~n:10 ~f:3 () in
  let n = params.Params.n in
  let scenario =
    {
      (Scenario.default params) with
      Scenario.clock_kind = Scenario.Adversarial_drift;
      delay_kind = Scenario.Extreme_delay;
      rounds = 40;
      faults =
        [
          (n - 3, Scenario.Silent);
          (n - 2, Scenario.Flood 5);
          (n - 1, Scenario.Adaptive_two_faced { split = (n - 3) / 2; faulty_from = n - 3 });
        ];
    }
  in
  let r = Scenario.run scenario in
  let gamma = Params.gamma params in
  Format.printf "--- storm: n = %d, f = %d, mixed adversarial cast ---@." n
    params.Params.f;
  Format.printf "max skew %.3e s vs gamma %.3e s: %s@." r.Scenario.max_skew gamma
    (if r.Scenario.max_skew <= gamma then "SURVIVED" else "violated!");
  Format.printf "largest adjustment %.3e s (bound %.3e s)@."
    (Stats.maximum r.Scenario.adjustments)
    (Params.adjustment_bound params);
  Format.printf "messages: %d (flooding inflates the count; honest load is n^2 = %d per round)@.@."
    r.Scenario.messages (n * n)

let run_cliff () =
  Format.printf "--- the 3f+1 cliff: same attack, one honest process fewer ---@.";
  let attack n f seed =
    let base = Csync_harness.Defaults.base () in
    let params =
      Params.unchecked ~n ~f ~rho:base.Params.rho ~delta:base.Params.delta
        ~eps:base.Params.eps ~beta:base.Params.beta ~big_p:base.Params.big_p ()
    in
    let faulty_from = n - f in
    let r =
      Scenario.run
        {
          (Scenario.default ~seed params) with
          Scenario.rounds = 30;
          delay_kind = Scenario.Extreme_delay;
          faults =
            List.init f (fun i ->
                ( faulty_from + i,
                  Scenario.Adaptive_two_faced
                    { split = (n - f) / 2; faulty_from } ));
        }
    in
    r.Scenario.steady_skew
  in
  let at7 = attack 7 2 3 and at6 = attack 6 2 3 in
  Format.printf "steady skew with n = 3f+1 = 7 : %.3e s@." at7;
  Format.printf "steady skew with n = 3f   = 6 : %.3e s (%.1fx worse)@." at6
    (at6 /. at7);
  Format.printf
    "one process below the bound, the reduction can no longer fence off the \
     colluders.@."

let () =
  run_storm ();
  run_cliff ()
