(* Quickstart: synchronize seven drifting clocks, two of them Byzantine.

   Builds a cluster of seven processes with rho-bounded drifting hardware
   clocks and millisecond-scale message delays, runs the Welch-Lynch
   maintenance algorithm for thirty rounds with the standard Byzantine cast
   (one silent process, one two-faced timing attacker), and prints the skew
   of the nonfaulty local times over time against the proved gamma bound.

   Run with:  dune exec examples/quickstart.exe *)

module Params = Csync_core.Params
module Scenario = Csync_harness.Scenario
module Series = Csync_metrics.Series

let () =
  (* 1. Pick the system constants (what the hardware gives you) and the
     round length (what you choose); the library derives the smallest
     admissible closeness beta and the agreement bound gamma. *)
  let params =
    match
      Params.auto
        ~n:7 (* processes *)
        ~f:2 (* tolerated Byzantine faults: n >= 3f+1 *)
        ~rho:1e-6 (* clock drift bound: +-1 ppm *)
        ~delta:1e-3 (* median message delay: 1 ms *)
        ~eps:1e-4 (* delay uncertainty: +-0.1 ms *)
        ~big_p:0.5 (* resynchronize every 0.5 s of local time *)
        ()
    with
    | Ok p -> p
    | Error errs ->
      List.iter (fun e -> Format.eprintf "parameter error: %a@." Params.pp_error e) errs;
      exit 1
  in
  Format.printf "parameters: %a@.@." Params.pp params;

  (* 2. Describe the run: defaults give drifting clocks, uniform delays and
     wake-ups spread across beta; add the standard Byzantine cast. *)
  let scenario = Scenario.with_standard_faults (Scenario.default params) in

  (* 3. Run it (purely deterministic given the seed). *)
  let result = Scenario.run scenario in

  (* 4. Inspect. *)
  let gamma = Params.gamma params in
  Format.printf "nonfaulty processes: %s@."
    (String.concat ", " (List.map string_of_int result.Scenario.nonfaulty));
  Format.printf "max skew  : %.3e s@." result.Scenario.max_skew;
  Format.printf "gamma     : %.3e s (Theorem 16 bound)  -> %s@." gamma
    (if result.Scenario.max_skew <= gamma then "within bound" else "VIOLATED");
  Format.printf "validity  : %s (Theorem 19 envelope)@."
    (match result.Scenario.validity with `Holds -> "holds" | `Violated _ -> "VIOLATED");
  let skews =
    Series.of_arrays ~label:"skew"
      (Csync_harness.Sampling.times result.Scenario.sampling)
      (Csync_harness.Sampling.skews result.Scenario.sampling)
  in
  Format.printf "@.skew over time (sparkline, %d samples):@.  %s@."
    (Series.length skews) (Series.sparkline skews);
  Format.printf "@.first rounds' real-time spread of round starts (B^i):@.";
  List.iter
    (fun (i, b) -> if i <= 6 then Format.printf "  B^%d = %.3e s@." i b)
    result.Scenario.round_spread;
  Format.printf "@.%d messages sent in %d rounds.@." result.Scenario.messages
    scenario.Scenario.rounds
