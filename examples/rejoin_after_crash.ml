(* Rejoin after crash: the Section 9.1 reintegration protocol.

   Process 5 runs normally, crashes during round 3, and wakes up during
   round 8 with a garbage correction (0.37 s off).  While it is down it
   counts against the fault budget - the cluster also carries one
   permanently silent Byzantine process, so the full budget f = 2 is in
   use.  On waking it observes the round traffic to orient itself, collects
   one full round of arrivals, applies the same fault-tolerant average as
   everyone else, and rejoins; two rounds later it is indistinguishable
   from the others.

   Run with:  dune exec examples/rejoin_after_crash.exe *)

module Runner = Csync_harness.Runner_reintegration
module Params = Csync_core.Params

let () =
  let params = Csync_harness.Defaults.base () in
  let t = Runner.default params in
  Format.printf
    "n = %d, f = %d; victim = p%d crashes at round %d, wakes at round %.1f \
     with correction %+.3f s@.@."
    params.Params.n params.Params.f t.Runner.victim t.Runner.crash_round
    t.Runner.wake_round t.Runner.wake_corr;
  let r = Runner.run t in
  Format.printf "victim's distance to the cluster median over time:@.";
  let big_p = params.Params.big_p in
  Array.iter
    (fun (time, offset) ->
      let round = time /. big_p in
      if Float.rem round 1.0 < 0.13 then
        Format.printf "  round %5.1f:  %.3e s%s@." round offset
          (if offset > 1e-2 then "   <- garbage clock, still reintegrating"
           else "")
    )
    r.Runner.victim_offset;
  Format.printf "@.joined at round: %s@."
    (match r.Runner.join_round with
     | Some i -> string_of_int i
     | None -> "never (!)");
  Format.printf "offset at wake      : %.3e s@." r.Runner.wake_offset;
  Format.printf "post-join skew      : %.3e s (gamma = %.3e s)@."
    r.Runner.post_join_skew (Params.gamma params);
  Format.printf "survivors undisturbed: their skew never exceeded %.3e s@."
    r.Runner.others_skew_throughout
