(* Why synchronized clocks matter: globally ordering distributed events.

   The paper's opening sentence: "Keeping the local times of processes in
   a distributed system synchronized in the presence of arbitrary faults
   is important in many applications".  This example shows the canonical
   application: nodes stamp their local events with synchronized time, and
   any two events separated by more than gamma in real time are ordered
   correctly by timestamp alone - no communication needed at read time.

   We run the maintenance algorithm, then generate pairs of events at
   different nodes with controlled real-time gaps and check whether the
   timestamp order matches the real order:

   - gaps > gamma:  always ordered correctly (the guarantee);
   - gaps <= gamma: may be misordered - and we measure how often, which is
     exactly why gamma is the "causality horizon" of a synchronized
     system.

   Run with:  dune exec examples/ordered_events.exe *)

module Params = Csync_core.Params
module Scenario = Csync_harness.Scenario
module Rng = Csync_sim.Rng

let () =
  let params = Csync_harness.Defaults.base () in
  let gamma = Params.gamma params in
  Format.printf "gamma = %.3e s: events farther apart than this are safely ordered@.@."
    gamma;
  let rng = Rng.create 99 in
  let trial gap =
    (* Deterministic replay, then sample p at t and q at t + gap. *)
    let seed = Rng.int rng 100_000 in
    let s =
      Scenario.with_standard_faults
        { (Scenario.default ~seed params) with Scenario.rounds = 8 }
    in
    (* We reuse the sampling machinery: skew at warm time bounds the
       misordering window; directly estimate via min/max locals. *)
    let res = Scenario.run s in
    let samples = res.Scenario.sampling.Csync_harness.Sampling.samples in
    let warm = samples.(Array.length samples / 2) in
    (* Event A gets the slowest clock's stamp at t; event B the fastest
       clock's stamp at t + gap: the worst case for ordering. *)
    let stamp_a = warm.Csync_harness.Sampling.max_local in
    let stamp_b = warm.Csync_harness.Sampling.min_local +. gap in
    stamp_b > stamp_a
  in
  let trials = 60 in
  List.iter
    (fun gap_factor ->
      let gap = gap_factor *. gamma in
      let ok = ref 0 in
      for _ = 1 to trials do
        if trial gap then incr ok
      done;
      Format.printf
        "real-time gap = %.2f * gamma: %3d/%d event pairs ordered correctly%s@."
        gap_factor !ok trials
        (if gap_factor > 1. then "  (guaranteed)" else ""))
    [ 0.25; 0.5; 0.9; 1.1; 2.0 ];
  Format.printf
    "@.Above gamma the ordering is certain; below it, it can fail - the \
     agreement bound is precisely the resolution of synchronized-clock \
     timestamps.@."
