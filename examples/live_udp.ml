(* Live UDP demonstration: the algorithm on a real (loopback) network.

   This is the repository's analogue of the paper's AT&T Bell Labs
   implementation (Section 9.3): each process is a thread with its own UDP
   socket and its own (artificially offset and drifting) clock, exchanging
   real datagrams.  Message delays come from the kernel, not a model, so
   the delta/eps envelope is chosen wide: delta = 25 ms with eps = 24.9 ms
   admits any loopback latency from 0.1 to 49.9 ms.

   Expected outcome: initial skew ~ beta (tens of ms), final skew well
   under gamma after a handful of rounds.  This demo is wall-clock real:
   it takes about 4 seconds.

   Run with:  dune exec examples/live_udp.exe *)

let () =
  let delta = 0.025 and eps = 0.0249 and rho = 1e-4 in
  let params =
    match Csync_core.Params.auto ~n:5 ~f:1 ~rho ~delta ~eps ~big_p:0.7 () with
    | Ok p -> p
    | Error errs ->
      List.iter
        (fun e -> Format.eprintf "parameter error: %a@." Csync_core.Params.pp_error e)
        errs;
      exit 1
  in
  Format.printf "live UDP run: %a@." Csync_core.Params.pp params;
  Format.printf "launching %d nodes on localhost, %.1f s...@." params.Csync_core.Params.n 4.0;
  let report =
    Csync_runtime.Live.run_maintenance ~params ~duration:4.0 ()
  in
  List.iter
    (fun (n : Csync_runtime.Live.node_report) ->
      Format.printf
        "  node %d: offset %+.4f s, rate %+.1e, corr %+.4f s, %d rounds, %d sent / %d received / %d malformed dropped@."
        n.pid n.injected_offset (n.injected_rate -. 1.) n.final_corr n.rounds
        n.sent n.received n.malformed)
    report.Csync_runtime.Live.nodes;
  Format.printf "initial skew : %.4e s@." report.Csync_runtime.Live.initial_skew;
  Format.printf "final skew   : %.4e s (gamma = %.4e s)@."
    report.Csync_runtime.Live.final_skew
    (Csync_core.Params.gamma params);
  if report.Csync_runtime.Live.final_skew <= Csync_core.Params.gamma params then
    Format.printf "SYNCHRONIZED within the bound, over a real network stack.@."
  else
    Format.printf
      "skew above gamma - loopback latency presumably fell outside the \
       configured delay envelope; try a larger delta.@."
