(* Cold start: establishing synchronization from wildly different clocks.

   Seven machines boot with clocks up to an hour apart.  The Section 9.2
   establishment algorithm - rounds driven by READY-message counting
   rather than local times - halves the spread every round even against
   colluding in-range liars, reaching the ~4 eps floor in about
   log2(spread/eps) rounds.

   Run with:  dune exec examples/cold_start.exe *)

module Runner = Csync_harness.Runner_establishment
module Bounds = Csync_core.Bounds
module Params = Csync_core.Params

let () =
  let params = Csync_harness.Defaults.base () in
  let initial_spread = 3600. (* one hour *) in
  let t =
    Runner.with_standard_faults
      { (Runner.default ~initial_spread params) with Runner.rounds = 40 }
  in
  Format.printf "establishing synchronization: clocks start up to %.0f s apart@."
    initial_spread;
  Format.printf "(n = %d, f = %d faulty: colluding in-range two-faced liars)@.@."
    params.Params.n params.Params.f;
  let r = Runner.run t in
  Format.printf "%-8s %-14s %-10s@." "round" "spread B^i (s)" "ratio";
  let _ =
    List.fold_left
      (fun prev (i, b) ->
        if i <= 26 then begin
          match prev with
          | None -> Format.printf "%-8d %-14.6e %-10s@." i b "-"
          | Some pb -> Format.printf "%-8d %-14.6e %-10.2f@." i b (b /. pb)
        end;
        Some b)
      None r.Runner.b_series
  in
  let fixpoint =
    Bounds.establishment_fixpoint ~rho:params.Params.rho
      ~delta:params.Params.delta ~eps:params.Params.eps
  in
  Format.printf "@.final spread: %.3e s (Lemma 20 fixpoint ~ 4 eps = %.3e s)@."
    r.Runner.final_b fixpoint;
  (match
     Bounds.establishment_rounds_to ~rho:params.Params.rho
       ~delta:params.Params.delta ~eps:params.Params.eps ~from:initial_spread
       ~target:(2. *. fixpoint)
   with
   | Some k -> Format.printf "theory predicts ~%d rounds to reach 2x fixpoint.@." k
   | None -> ());
  Format.printf
    "after this, a system switches to the maintenance algorithm (Section \
     9.2's two modes) - demonstrated below with the Bootstrap protocol.@.";

  (* Phase 2: the full two-mode boot, establishment + switch + maintenance,
     on one cluster. *)
  let module Boot = Csync_core.Bootstrap in
  let module Maint = Csync_core.Maintenance in
  let module Est = Csync_core.Establishment in
  let module Cluster = Csync_process.Cluster in
  let module Hw = Csync_clock.Hardware_clock in
  let spread = 30. in
  let switch_round = Boot.switch_round_for_spread params ~initial_spread:spread in
  Format.printf
    "@.--- two-mode boot: %d establishment rounds, then switch to the \
     maintenance grid ---@."
    switch_round;
  let rng = Csync_sim.Rng.create 12 in
  let n = params.Params.n in
  let readers = Hashtbl.create n in
  let procs =
    Array.init n (fun pid ->
        let cfg =
          Boot.config ~switch_round ~est:(Est.config params)
            ~maint:(Maint.config params) ()
        in
        let proc, reader = Boot.create ~self:pid cfg in
        Hashtbl.add readers pid reader;
        proc)
  in
  let clocks =
    Array.init n (fun pid ->
        let v = if pid = 0 then 0. else Csync_sim.Rng.uniform rng ~lo:0. ~hi:spread in
        Hw.create ~t0:0. ~offset:v
          (Csync_clock.Drift.random ~rng ~rho:params.Params.rho
             ~segment_duration:0.3 ~horizon:60.))
  in
  let delay =
    Csync_net.Delay.uniform ~delta:params.Params.delta ~eps:params.Params.eps
      ~rng:(Csync_sim.Rng.split rng)
  in
  let cluster = Cluster.create ~clocks ~delay ~procs () in
  for pid = 0 to n - 1 do
    Cluster.schedule_start cluster ~pid ~time:(0.001 +. (0.0001 *. float_of_int pid))
  done;
  Cluster.run_until cluster 5.0;
  let locals = List.init n (fun pid -> Cluster.local_time cluster pid) in
  let lo = List.fold_left Float.min (List.hd locals) locals in
  let hi = List.fold_left Float.max (List.hd locals) locals in
  List.iteri
    (fun pid local ->
      let st = (Hashtbl.find readers pid) () in
      Format.printf "  p%d: %s, local %.6f@." pid
        (match Boot.mode st with
         | Boot.Establishing -> "still establishing"
         | Boot.Rescuing -> "rescuing"
         | Boot.Switched -> "maintenance")
        local)
    locals;
  Format.printf "boot complete: skew %.3e s (gamma %.3e s) in maintenance mode.@."
    (hi -. lo) (Params.gamma params)
