(* Command-line interface to the Welch-Lynch clock-synchronization
   reproduction: list and run the paper's experiments, inspect parameter
   sets, and run ad-hoc simulations. *)

open Cmdliner

let quick_arg =
  let doc = "Trim sweeps and horizons (seconds instead of minutes of CPU)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let jobs_arg =
  let doc =
    "Worker count for experiment cells (0 = auto: \\$(b,CSYNC_JOBS) or the \
     runtime's recommended domain count).  Output is identical for every \
     value; on OCaml 4 the executor is sequential regardless."
  in
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let jobs_opt jobs = if jobs > 0 then Some jobs else None

(* Online theorem monitors (csync run/chaos/trace --monitor): evaluate the
   paper's bounds while the run executes instead of post hoc.  The monitor
   is installed ambiently, like the telemetry registry, and captured by
   the simulator components at creation time. *)
let monitor_arg =
  let doc =
    "Evaluate the paper's bounds online while the run executes (agreement \
     gamma, the validity envelope, per-round |ADJ|, error halving) and \
     print a per-monitor summary; an adjustment violation names the exact \
     messages (and chaos faults) behind it.  Monitors only observe: output \
     tables are byte-identical with or without this flag."
  in
  Arg.(value & flag & info [ "monitor" ] ~doc)

let tighten_arg =
  let doc =
    "Multiply every monitored bound by $(docv) (< 1 tightens the bounds \
     beyond the theorems - the standard way to force a violation and \
     exercise provenance extraction).  Implies $(b,--monitor)."
  in
  Arg.(value & opt float 1.0 & info [ "tighten" ] ~docv:"FACTOR" ~doc)

let with_monitor ~monitor ~tighten f =
  if monitor || tighten <> 1.0 then begin
    let mon = Csync_obs.Monitor.create ~tighten () in
    Csync_obs.Monitor.install mon;
    Fun.protect
      ~finally:Csync_obs.Monitor.clear_installed
      (fun () -> f (Some mon))
  end
  else f None

let pp_monitor_summary mon =
  Format.printf "@.== Monitors ==@.%a" Csync_obs.Monitor.pp_summary mon

(* Resolve experiment ids (empty = all), preserving the requested order. *)
let resolve_ids ids =
  match ids with
  | [] -> Ok Csync_harness.Registry.all
  | ids ->
    List.fold_left
      (fun acc id ->
        match (acc, Csync_harness.Registry.find id) with
        | Error e, _ -> Error e
        | Ok l, Some e -> Ok (l @ [ e ])
        | Ok _, None -> Error (Printf.sprintf "unknown experiment %S" id))
      (Ok []) ids

(* csync list *)
let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Format.printf "%-4s %-60s [%s]@." e.Csync_harness.Experiment.id
          e.Csync_harness.Experiment.title e.Csync_harness.Experiment.paper_ref)
      Csync_harness.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the paper experiments (E1-E12).")
    Term.(const run $ const ())

(* csync run [IDS...] *)
let run_cmd =
  let ids_arg =
    let doc = "Experiment ids to run (default: all)." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run quick jobs monitor tighten ids =
    match resolve_ids ids with
    | Error msg -> `Error (false, msg)
    | Ok experiments ->
      with_monitor ~monitor ~tighten @@ fun mon ->
      Csync_harness.Registry.render_list ?jobs:(jobs_opt jobs)
        Format.std_formatter ~quick experiments;
      (match mon with
      | None -> `Ok ()
      | Some mon ->
        pp_monitor_summary mon;
        if Csync_obs.Monitor.violations_total mon = 0 then `Ok ()
        else
          `Error
            ( false,
              "monitored bounds violated (expected for experiments that \
               deliberately break the assumptions, e.g. the n <= 3f legs)" ))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run experiments by id (all of them when no id is given).")
    Term.(
      ret (const run $ quick_arg $ jobs_arg $ monitor_arg $ tighten_arg $ ids_arg))

(* csync params *)
let params_cmd =
  let float_opt name ~doc ~default =
    Arg.(value & opt float default & info [ name ] ~doc)
  in
  let run n f rho delta eps big_p =
    match Csync_core.Params.auto ~n ~f ~rho ~delta ~eps ~big_p () with
    | Error errs ->
      List.iter
        (fun e -> Format.eprintf "error: %a@." Csync_core.Params.pp_error e)
        errs;
      `Error (false, "invalid parameter combination")
    | Ok p ->
      let open Csync_core.Params in
      Format.printf "%a@." pp p;
      Format.printf "derived:@.";
      Format.printf "  beta (chosen minimal)   = %.6g s@." p.beta;
      Format.printf "  gamma (agreement bound) = %.6g s@." (gamma p);
      Format.printf "  adjustment bound        = %.6g s@." (adjustment_bound p);
      Format.printf "  lambda (shortest round) = %.6g s@." (lambda p);
      let a1, a2, a3 = validity p in
      Format.printf "  validity (a1, a2, a3)   = (%.8f, %.8f, %.3g)@." a1 a2 a3;
      Format.printf "  P admissible in         = [%.6g, %.6g]@."
        (p_min ~rho ~delta ~eps ~beta:p.beta)
        (p_max ~rho ~delta ~eps ~beta:p.beta);
      `Ok ()
  in
  let n = Arg.(value & opt int 7 & info [ "n" ] ~doc:"Number of processes.") in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Fault budget.") in
  Cmd.v
    (Cmd.info "params"
       ~doc:
         "Compute the Section 5.2 parameter calculus for a configuration: \
          minimal beta, gamma, validity coefficients, admissible P range.")
    Term.(
      ret
        (const run $ n $ f
        $ float_opt "rho" ~doc:"Drift bound." ~default:1e-6
        $ float_opt "delta" ~doc:"Median message delay (s)." ~default:1e-3
        $ float_opt "eps" ~doc:"Delay uncertainty (s)." ~default:1e-4
        $ float_opt "P" ~doc:"Round length (s, local time)." ~default:0.5))

(* csync simulate *)
let simulate_cmd =
  let run quick seed n f rounds faults trace =
    let params = Csync_harness.Defaults.base ~n ~f () in
    let scenario =
      { (Csync_harness.Scenario.default ~seed params) with
        Csync_harness.Scenario.rounds = (if quick then min rounds 10 else rounds);
        trace = trace > 0 }
    in
    let scenario =
      if faults then Csync_harness.Scenario.with_standard_faults scenario
      else scenario
    in
    let r = Csync_harness.Scenario.run scenario in
    Format.printf "%a@." Csync_core.Params.pp params;
    Format.printf "nonfaulty processes : %s@."
      (String.concat ", " (List.map string_of_int r.Csync_harness.Scenario.nonfaulty));
    Format.printf "max skew            : %.3e s (gamma = %.3e s)@."
      r.Csync_harness.Scenario.max_skew
      (Csync_core.Params.gamma params);
    Format.printf "steady skew         : %.3e s@." r.Csync_harness.Scenario.steady_skew;
    Format.printf "max |ADJ|           : %.3e s (bound = %.3e s)@."
      (Csync_metrics.Stats.maximum r.Csync_harness.Scenario.adjustments)
      (Csync_core.Params.adjustment_bound params);
    Format.printf "validity            : %s@."
      (match r.Csync_harness.Scenario.validity with
       | `Holds -> "holds"
       | `Violated _ -> "VIOLATED");
    Format.printf "messages sent       : %d@." r.Csync_harness.Scenario.messages;
    if trace > 0 then begin
      let entries = r.Csync_harness.Scenario.trace in
      let skip = max 0 (List.length entries - trace) in
      Format.printf "last %d trace entries:@." (min trace (List.length entries));
      List.iteri
        (fun i (time, msg) ->
          if i >= skip then Format.printf "  [%12.6f] %s@." time msg)
        entries
    end;
    `Ok ()
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed.") in
  let n = Arg.(value & opt int 7 & info [ "n" ] ~doc:"Number of processes.") in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Fault budget.") in
  let rounds = Arg.(value & opt int 30 & info [ "rounds" ] ~doc:"Rounds to run.") in
  let faults =
    Arg.(value & flag & info [ "faults" ] ~doc:"Enable the standard Byzantine cast.")
  in
  let trace =
    Arg.(
      value & opt int 0
      & info [ "trace" ]
          ~doc:"Print the last N delivery-trace entries after the run.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one ad-hoc maintenance simulation.")
    Term.(ret (const run $ quick_arg $ seed $ n $ f $ rounds $ faults $ trace))

(* csync chaos *)
let chaos_cmd =
  let run quick seed plans n f rounds plan_file monitor tighten state_corrupt
      =
    let module RC = Csync_harness.Runner_chaos in
    let module Plan = Csync_chaos.Plan in
    let module Injector = Csync_chaos.Injector in
    with_monitor ~monitor ~tighten @@ fun mon ->
    let result =
    match Csync_harness.Defaults.base ~n ~f () with
    | exception Invalid_argument msg -> `Error (false, msg)
    | _ when f < 1 -> `Error (false, "chaos needs a fault budget of f >= 1")
    | params ->
    let good r = RC.ok r && RC.stabilizations_ok ~params r in
    match plan_file with
    | Some file -> begin
      (* One deterministic run of a serialized plan (e.g. a model-checker
         counterexample exported with csync check --cex). *)
      match
        try
          let ic = open_in_bin file in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          Ok s
        with Sys_error e -> Error e
      with
      | Error e -> `Error (false, e)
      | Ok contents ->
      match Plan.of_sexp_string contents with
      | Error e -> `Error (false, Printf.sprintf "%s: %s" file e)
      | Ok plan ->
        (match Plan.validate ~n plan with
        | exception Invalid_argument e ->
          `Error (false, Printf.sprintf "%s: invalid plan: %s" file e)
        | () ->
          let rounds = max 15 rounds in
          Format.printf "replaying plan %s (%s)@." file (Plan.describe plan);
          let r = RC.run (RC.make ~seed ~rounds ~params plan) in
          Format.printf
            "injected %d faults; clean skew %.3e / gamma %.3e: %s@."
            (Injector.total r.RC.stats) r.RC.max_clean_skew r.RC.gamma
            (if good r then "ok" else "BOUND VIOLATED");
          if good r then `Ok ()
          else `Error (false, "plan violated the agreement bound"))
    end
    | None ->
    let plans = if quick then min plans 5 else plans in
    let seeds = List.init plans (fun i -> seed + i) in
    let rounds = max 15 rounds in
    Format.printf "chaos campaign: %d plans, %a@." plans Csync_core.Params.pp
      params;
    let runs = RC.campaign ~rounds ~corrupt:state_corrupt ~params ~seeds () in
    let failures =
      List.filter
        (fun { RC.seed; plan; result = r } ->
          Format.printf
            "seed %-6d  %-40s  injected %-4d  clean skew %.3e / gamma %.3e  %s@."
            seed (Plan.describe plan)
            (Injector.total r.RC.stats)
            r.RC.max_clean_skew r.RC.gamma
            (if good r then "ok"
             else if not (RC.agreement_ok r) then "AGREEMENT VIOLATED"
             else if not (RC.recoveries_ok r) then "REJOIN FAILED"
             else "STABILIZATION FAILED");
          List.iter
            (fun v ->
              Format.printf "             recovery p%d: %s@." v.RC.pid
                (match v.RC.join_round with
                 | Some r -> Printf.sprintf "rejoined at round %d" r
                 | None -> "never rejoined"))
            r.RC.recoveries;
          List.iter
            (fun s ->
              Format.printf
                "             corruption p%d sev %.2f: %d breach(es), back \
                 in gamma %.1f rounds after the hit@."
                s.RC.corrupted_pid s.RC.severity s.RC.wrapper_breaches
                (s.RC.stabilized_in /. params.Csync_core.Params.big_p))
            r.RC.stabilizations;
          not (good r))
        runs
    in
    if failures = [] then begin
      Format.printf "all %d plans passed.@." plans;
      `Ok ()
    end
    else
      `Error
        ( false,
          Printf.sprintf "%d of %d chaos plans violated the bound"
            (List.length failures) plans )
    in
    (* Monitor verdicts are informational here: chaos victims are real
       maintenance automata pushed outside the paper's assumptions, so
       their bound breaches are the expected, provenance-annotated
       outcome - the campaign's own suspect-aware check decides pass or
       fail. *)
    (match mon with Some mon -> pp_monitor_summary mon | None -> ());
    result
  in
  let seed = Arg.(value & opt int 1000 & info [ "seed" ] ~doc:"First seed.") in
  let plans =
    Arg.(value & opt int 20 & info [ "plans" ] ~doc:"Number of random plans.")
  in
  let n = Arg.(value & opt int 7 & info [ "n" ] ~doc:"Number of processes.") in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Fault budget.") in
  let rounds =
    Arg.(value & opt int 24 & info [ "rounds" ] ~doc:"Rounds per run (>= 15).")
  in
  let plan_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"FILE"
          ~doc:
            "Instead of a random campaign, run the single serialized fault \
             plan in $(docv) (s-expression, as written by the plan \
             generator or csync check).")
  in
  let state_corrupt =
    Arg.(
      value & flag
      & info [ "state-corrupt" ]
          ~doc:
            "Force a transient state corruption into every generated plan \
             (and add the fault kind to the random pool): the victim's \
             correction, arrival buffers, and round bookkeeping are \
             overwritten with garbage, and the stabilizing recovery \
             wrapper must detect the breach and reintegrate within the \
             derived round bound.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a campaign of randomized fault plans (crashes, partitions, \
          lossy links, clock disturbances, transient state corruption) and \
          check the suspect-aware agreement bound plus reintegration of \
          repaired crashers and self-stabilization of corrupted state.")
    Term.(
      ret
        (const run $ quick_arg $ seed $ plans $ n $ f $ rounds $ plan_file
       $ monitor_arg $ tighten_arg $ state_corrupt))

(* csync check *)
let check_cmd =
  let module Scope = Csync_check.Scope in
  let module Explorer = Csync_check.Explorer in
  let module Cex = Csync_check.Cex in
  let module Replay = Csync_check.Replay in
  let read_file file =
    try
      let ic = open_in_bin file in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Ok s
    with Sys_error e -> Error e
  in
  let write_file file s =
    let oc = open_out file in
    output_string oc s;
    output_char oc '\n';
    close_out oc
  in
  let replay_file file =
    match read_file file with
    | Error e -> `Error (false, e)
    | Ok contents ->
    match Cex.of_sexp_string contents with
    | Error e -> `Error (false, Printf.sprintf "%s: %s" file e)
    | Ok cex ->
      Format.printf "%a@." Cex.pp cex;
      let r = Replay.run cex in
      Array.iteri
        (fun i s -> Format.printf "round %d replayed spread: %.6g s@." i s)
        r.Replay.round_spreads;
      let agrees = Float.equal r.Replay.skew cex.Cex.measured in
      Format.printf "replayed skew %.6g s; checker reported %.6g s: %s@."
        r.Replay.skew cex.Cex.measured
        (if agrees then "bit-exact match" else "MISMATCH");
      (match Replay.diff_provenance cex r.Replay.delay_log with
      | [] -> Format.printf "delay provenance: all choices followed@."
      | ms ->
        Format.printf "delay provenance: %d deviations (first at t=%.6g)@."
          (List.length ms)
          (match ms with m :: _ -> m.Replay.at | [] -> 0.));
      if agrees then `Ok ()
      else `Error (false, "replay does not reproduce the checker's skew")
  in
  let explore preset_name depth lattice weaken max_states no_symmetry
      no_dedup jobs cex_file =
    match Scope.preset preset_name with
    | Error e -> `Error (false, e)
    | Ok scope ->
      let scope =
        {
          scope with
          Scope.depth = (if depth > 0 then depth else scope.Scope.depth);
          lattice = (if lattice > 0 then lattice else scope.Scope.lattice);
          gamma_factor = weaken *. scope.Scope.gamma_factor;
          max_states =
            (if max_states > 0 then max_states else scope.Scope.max_states);
          symmetry = scope.Scope.symmetry && not no_symmetry;
          dedup = scope.Scope.dedup && not no_dedup;
        }
      in
      Format.printf "%a@." Scope.pp scope;
      let t_start = Unix.gettimeofday () in
      (match scope.Scope.mode with
      | Scope.Reintegrate ->
        let r = Explorer.run_reintegration ?jobs:(jobs_opt jobs) scope in
        let dt = Unix.gettimeofday () -. t_start in
        Format.printf
          "explored %d delay paths (%d mini-simulations) in %.2f s (%.0f \
           sims/s)@."
          r.Explorer.paths r.Explorer.r_sims dt
          (float_of_int r.Explorer.r_sims /. Float.max dt 1e-9);
        Format.printf "joined: %d/%d; within gamma: %d/%d@."
          r.Explorer.joined r.Explorer.paths r.Explorer.within_gamma
          r.Explorer.paths;
        if r.Explorer.failures = [] then begin
          Format.printf "reintegration goal holds on every path.@.";
          `Ok ()
        end
        else begin
          List.iter (Format.printf "  %s@.") r.Explorer.failures;
          Format.printf "worst final gap: %.6g s@." r.Explorer.worst_gap;
          `Error (false, "reintegration goal failed")
        end
      | Scope.Maintain ->
        let r = Explorer.run ?jobs:(jobs_opt jobs) scope in
        let dt = Unix.gettimeofday () -. t_start in
        let s = r.Explorer.stats in
        Format.printf
          "states %d (deduped %d), schedules %d, mini-simulations %d in \
           %.2f s@."
          s.Explorer.states s.Explorer.deduped s.Explorer.transitions
          s.Explorer.sims dt;
        Format.printf "throughput: %.0f states/s, %.0f schedules/s@."
          (float_of_int s.Explorer.states /. Float.max dt 1e-9)
          (float_of_int s.Explorer.transitions /. Float.max dt 1e-9);
        Format.printf "frontier per depth: %s@."
          (String.concat " "
             (List.map string_of_int s.Explorer.frontier));
        if s.Explorer.truncated then
          Format.printf
            "WARNING: frontier budget (%d states) exceeded - exploration \
             was TRUNCATED and is NOT exhaustive.@."
            scope.Scope.max_states;
        (match r.Explorer.violations with
        | [] ->
          Format.printf "no property violations%s.@."
            (if s.Explorer.truncated then " (within the truncated frontier)"
             else "; the scope is exhaustively verified");
          `Ok ()
        | v :: _ as vs ->
          Format.printf "%d violation%s found; first:@." (List.length vs)
            (if List.length vs = 1 then "" else "s");
          Format.printf "  at depth %d: %a@." v.Explorer.depth
            Csync_check.Props.pp_violation v.Explorer.prop;
          Format.printf "%a@." Cex.pp v.Explorer.cex;
          (match cex_file with
          | Some file ->
            write_file file (Cex.to_sexp_string v.Explorer.cex);
            Format.printf "counterexample written to %s@." file;
            (match Cex.to_chaos_plan v.Explorer.cex with
            | Ok _ ->
              Format.printf
                "(timing-free: also replayable via csync chaos --plan)@."
            | Error _ -> ())
          | None ->
            Format.printf "%s@." (Cex.to_sexp_string v.Explorer.cex));
          `Error (false, "property violation found")))
  in
  let run preset list_presets depth lattice weaken max_states no_symmetry
      no_dedup jobs cex_file replay =
    if list_presets then begin
      List.iter
        (fun (name, descr, _) -> Format.printf "%-18s %s@." name descr)
        Scope.presets;
      `Ok ()
    end
    else
      match replay with
      | Some file -> replay_file file
      | None ->
        explore preset depth lattice weaken max_states no_symmetry no_dedup
          jobs cex_file
  in
  let preset =
    Arg.(
      value & opt string "agreement-n3f1"
      & info [ "preset"; "p" ] ~docv:"NAME"
          ~doc:
            "Scope to explore (named by nonfaulty count; see --list). \
             Presets mirror the paper's theorems: agreement-* verify \
             Theorem 16's gamma at n >= 3f+1, divergence-n2f1 exhibits \
             the n = 3f breakdown, validity-* check the Theorem 19 \
             envelope, reintegration-* the Section 9 rejoin goal.")
  in
  let list_presets =
    Arg.(value & flag & info [ "list" ] ~doc:"List the available scopes.")
  in
  let depth =
    Arg.(
      value & opt int 0
      & info [ "depth" ] ~docv:"ROUNDS" ~doc:"Override the rounds to explore.")
  in
  let lattice =
    Arg.(
      value & opt int 0
      & info [ "lattice" ] ~docv:"K"
          ~doc:"Override delay choices per message (1, 2 or 3).")
  in
  let weaken =
    Arg.(
      value & opt float 1.0
      & info [ "weaken-gamma" ] ~docv:"FACTOR"
          ~doc:
            "Multiply the agreement bound by $(docv) (< 1 tightens it \
             beyond the theorem, forcing a counterexample - the standard \
             way to exercise extraction and replay).")
  in
  let max_states =
    Arg.(
      value & opt int 0
      & info [ "max-states" ] ~docv:"N" ~doc:"Override the frontier budget.")
  in
  let no_symmetry =
    Arg.(
      value & flag
      & info [ "no-symmetry" ]
          ~doc:"Disable the process-permutation quotient (for comparison).")
  in
  let no_dedup =
    Arg.(
      value & flag
      & info [ "no-dedup" ] ~doc:"Disable visited-state deduplication.")
  in
  let cex_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "cex" ] ~docv:"FILE"
          ~doc:
            "Write the first counterexample to $(docv) (s-expression; \
             replay with --replay).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Re-execute a counterexample file in the full simulator \
             instead of exploring, and verify it reproduces the reported \
             skew bit-for-bit.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustively model-check a small scope of the protocol: every \
          Byzantine strategy from a menu crossed with every per-message \
          delay choice, against the paper's agreement / adjustment / \
          validity bounds.  Violations are exported as replayable \
          counterexamples.")
    Term.(
      ret
        (const run $ preset $ list_presets $ depth $ lattice $ weaken
       $ max_states $ no_symmetry $ no_dedup $ jobs_arg $ cex_file $ replay))

(* csync export *)
let export_cmd =
  let dir_arg =
    Arg.(value & opt string "results" & info [ "out"; "o" ] ~doc:"Output directory.")
  in
  let ids_arg =
    let doc = "Experiment ids to export (default: all)." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let sanitize name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
        | _ -> '_')
      name
  in
  let run quick jobs dir ids =
    match resolve_ids ids with
    | Error msg -> `Error (false, msg)
    | Ok experiments ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun (e, tables) ->
          List.iteri
            (fun i tbl ->
              let file =
                Printf.sprintf "%s/%s_%d_%s.csv" dir
                  e.Csync_harness.Experiment.id i
                  (sanitize (Csync_metrics.Table.title tbl))
              in
              let oc = open_out file in
              output_string oc (Csync_metrics.Table.to_csv tbl);
              close_out oc;
              Format.printf "wrote %s@." file)
            tables)
        (Csync_harness.Registry.run_list ?jobs:(jobs_opt jobs) ~quick
           experiments);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Run experiments and write each table as CSV into a directory.")
    Term.(ret (const run $ quick_arg $ jobs_arg $ dir_arg $ ids_arg))

(* csync bench *)
let bench_cmd =
  let json_arg =
    let doc =
      "Also rerun the suite at one worker (speedup + byte-identity check) \
       and write the report as JSON to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let suite_arg =
    let doc = "Print the rendered experiment tables too (not just timings)." in
    Arg.(value & flag & info [ "tables" ] ~doc)
  in
  let baseline_arg =
    let doc =
      "Compare this run's kernels (and suite wall-clock) against a \
       previously written BENCH JSON report and print per-kernel deltas."
    in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let max_ns_arg =
    let doc =
      "Fail (exit nonzero) if the named kernel's measured time exceeds the \
       bound, e.g. $(b,engine/schedule-pop-1k=404794).  Repeatable; the CI \
       perf gate."
    in
    Arg.(
      value
      & opt_all (pair ~sep:'=' string float) []
      & info [ "max-ns" ] ~docv:"KERNEL=NS" ~doc)
  in
  let check_max_ns report bounds =
    let failures =
      List.filter_map
        (fun (name, bound) ->
          match
            List.find_opt
              (fun k -> String.equal k.Bench_report.name name)
              report.Bench_report.kernels
          with
          | None -> Some (Printf.sprintf "kernel %s not measured" name)
          | Some k when not (Float.is_finite k.Bench_report.ns_per_op) ->
            Some (Printf.sprintf "kernel %s has no finite estimate" name)
          | Some k when k.Bench_report.ns_per_op > bound ->
            Some
              (Printf.sprintf "kernel %s: %.1f ns/op exceeds bound %.1f" name
                 k.Bench_report.ns_per_op bound)
          | Some k ->
            Format.printf "max-ns ok: %s %.1f <= %.1f ns/op@." name
              k.Bench_report.ns_per_op bound;
            None)
        bounds
    in
    match failures with
    | [] -> `Ok ()
    | fs -> `Error (false, String.concat "; " fs)
  in
  let run quick jobs json tables baseline max_ns =
    (* Load the baseline before the (slow) run so a bad path fails fast. *)
    match Option.map Bench_report.load_baseline baseline with
    | Some (Error e) -> `Error (false, e)
    | (None | Some (Ok _)) as loaded ->
      let report, suite_output =
        Bench_report.run ~jobs ~quick ~compare_jobs1:(json <> None) ()
      in
      if tables then print_string suite_output;
      Format.printf "######## Micro-benchmarks (bechamel, ns per run)@.";
      Bench_report.pp_kernels Format.std_formatter report.Bench_report.kernels;
      Bench_report.pp_summary Format.std_formatter report;
      (match (loaded, baseline) with
      | Some (Ok b), Some file ->
        Bench_report.pp_baseline_deltas Format.std_formatter ~file report b
      | _ -> ());
      (match json with
      | None -> ()
      | Some file ->
        Bench_report.write_json report file;
        Format.printf "wrote %s@." file);
      check_max_ns report max_ns
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Time the experiment suite (optionally vs one worker) and \
          micro-benchmark the kernels; optionally emit a BENCH JSON report \
          or diff against a previous one.")
    Term.(
      ret
        (const run $ quick_arg $ jobs_arg $ json_arg $ suite_arg $ baseline_arg
       $ max_ns_arg))

(* csync trace *)
let trace_cmd =
  let module Obs = Csync_obs.Registry in
  let module Json = Csync_obs.Json in
  let params_json (p : Csync_core.Params.t) =
    Json.Obj
      [
        ("n", Json.num_of_int p.n);
        ("f", Json.num_of_int p.f);
        ("rho", Json.Num p.rho);
        ("delta", Json.Num p.delta);
        ("eps", Json.Num p.eps);
        ("beta", Json.Num p.beta);
        ("big_p", Json.Num p.big_p);
        ("t0", Json.Num p.t0);
        ("gamma", Json.Num (Csync_core.Params.gamma p));
        ("adjustment_bound", Json.Num (Csync_core.Params.adjustment_bound p));
      ]
  in
  let write_trace ~out ~format ~canonical ~target ~seed ~jobs ~quick ~params
      ~mon reg =
    let module Record = Csync_obs.Record in
    let manifest =
      Csync_obs.Manifest.make ~target ~seed ~jobs ~quick
        ?params:(Option.map params_json params) ()
    in
    (* Monitor verdicts ride the same capture: one {"record":"monitor"}
       line per configured check, so csync report and --diff can render
       and compare them. *)
    let records =
      List.map
        (fun j ->
          match Record.of_json j with
          | Ok r -> r
          | Error e -> failwith ("trace dump produced a bad record: " ^ e))
        (manifest :: (Obs.dump reg @ Csync_obs.Monitor.dump mon))
    in
    let records = if canonical then Record.canonical records else records in
    (match format with
    | `Binary -> Csync_obs.Btrace.write_file out records
    | `Jsonl ->
      let oc = open_out out in
      List.iter
        (fun r ->
          output_string oc (Json.to_string (Record.to_json r));
          output_char oc '\n')
        records;
      close_out oc);
    Format.printf "wrote %s (%d records)@." out (List.length records)
  in
  let run quick jobs seed monitor tighten out format canonical target =
    let jobs_v =
      match jobs_opt jobs with
      | Some j -> j
      | None -> Csync_harness.Pool.default_jobs ()
    in
    with_monitor ~monitor ~tighten @@ fun mon_opt ->
    let reg = Obs.create () in
    Obs.install reg;
    let finish ~params result =
      Obs.clear_installed ();
      (match result with
      | Ok () ->
        write_trace ~out ~format ~canonical ~target ~seed ~jobs:jobs_v ~quick
          ~params
          ~mon:(Option.value mon_opt ~default:Csync_obs.Monitor.none)
          reg;
        Option.iter pp_monitor_summary mon_opt
      | Error _ -> ());
      match result with Ok () -> `Ok () | Error msg -> `Error (false, msg)
    in
    match String.lowercase_ascii target with
    | "chaos" ->
      let module RC = Csync_harness.Runner_chaos in
      let params = Csync_harness.Defaults.base ~n:7 ~f:2 () in
      let { RC.plan; result = r; _ } = RC.single ~params ~seed () in
      Format.printf "chaos seed %d: %s@." seed (Csync_chaos.Plan.describe plan);
      Format.printf "injected %d faults; clean skew %.3e / gamma %.3e: %s@."
        (Csync_chaos.Injector.total r.RC.stats)
        r.RC.max_clean_skew r.RC.gamma
        (if RC.ok r then "ok" else "BOUND VIOLATED");
      finish ~params:(Some params) (Ok ())
    | "check" ->
      let module Scope = Csync_check.Scope in
      let module Explorer = Csync_check.Explorer in
      (match Scope.preset "agreement-n3f1" with
      | Error e -> finish ~params:None (Error e)
      | Ok scope ->
        let scope =
          if quick then { scope with Scope.depth = min scope.Scope.depth 2 }
          else scope
        in
        let r = Explorer.run ?jobs:(jobs_opt jobs) scope in
        let s = r.Explorer.stats in
        Format.printf "states %d (deduped %d), mini-simulations %d@."
          s.Explorer.states s.Explorer.deduped s.Explorer.sims;
        finish ~params:None
          (if r.Explorer.violations = [] then Ok ()
           else Error "property violation found"))
    | _ -> (
      match resolve_ids [ target ] with
      | Error msg -> finish ~params:None (Error msg)
      | Ok experiments ->
        Csync_harness.Registry.render_list ?jobs:(jobs_opt jobs)
          Format.std_formatter ~quick experiments;
        finish ~params:None (Ok ()))
  in
  let seed =
    Arg.(
      value & opt int 1000
      & info [ "seed" ] ~doc:"Seed for the chaos target's generated plan.")
  in
  let out_arg =
    Arg.(
      value & opt string "run.jsonl"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Trace output path.")
  in
  let format_arg =
    let doc =
      "Container: $(b,jsonl) (one JSON object per line) or $(b,binary) \
       (csync-btrace/1 - length-prefixed records with interned names, \
       roughly an order of magnitude smaller at scale).  csync report \
       reads both."
    in
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("binary", `Binary) ]) `Jsonl
      & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let canonical_arg =
    let doc =
      "Restrict the capture to records that are a pure function of the \
       run's inputs: drop spans, gauges, pool/profile metrics, and \
       volatile manifest fields.  Canonical traces are byte-identical \
       across $(b,--jobs) and across machines."
    in
    Arg.(value & flag & info [ "canonical" ] ~doc)
  in
  let target_arg =
    let doc =
      "What to capture: an experiment id (e.g. $(b,E1)), $(b,chaos) (one \
       generated fault plan), or $(b,check) (one model-checking scope)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a target with telemetry enabled and capture the full trace \
          (manifest, counters, gauges, series, histograms, spans, events) \
          as JSONL or binary btrace.  The run's tables are byte-identical \
          to an untraced run; render the capture with csync report or \
          watch it with csync top.")
    Term.(
      ret
        (const run $ quick_arg $ jobs_arg $ seed $ monitor_arg $ tighten_arg
       $ out_arg $ format_arg $ canonical_arg $ target_arg))

(* csync collect *)
let collect_cmd =
  let pp_node_stats (s : Csync_obs.Collect.node_stats) =
    Format.printf
      "p%-4d frames %-6d records %-7d gaps %-4d lost %-4d resets %-3d errors \
       %-3d@."
      s.Csync_obs.Collect.src s.frames s.records s.gaps s.lost s.resets
      s.errors
  in
  let run port out duration snapshot_period max_src =
    match
      Csync_runtime.Collector.run ~port ~max_src ~out ~duration
        ~snapshot_period ()
    with
    | exception Unix.Unix_error (e, fn, _) ->
      `Error (false, Printf.sprintf "%s: %s" fn (Unix.error_message e))
    | stats, rejected ->
      List.iter pp_node_stats stats;
      Format.printf "rejected datagrams: %d@." rejected;
      Format.printf "wrote %s@." out;
      `Ok ()
  in
  let port_arg =
    Arg.(
      value & opt int 17_900
      & info [ "port" ] ~docv:"PORT" ~doc:"UDP port to listen on (localhost).")
  in
  let out_arg =
    Arg.(
      value & opt string "fleet.btrace"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Merged fleet trace output path (binary btrace).")
  in
  let duration_arg =
    Arg.(
      value & opt float 10.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"How long to collect.")
  in
  let snap_arg =
    Arg.(
      value & opt float 1.0
      & info [ "snapshot-period" ] ~docv:"SECONDS"
          ~doc:
            "Rewrite the merged trace every $(docv) seconds (atomically, so \
             csync top --fleet can watch it grow).")
  in
  let max_src_arg =
    Arg.(
      value & opt int 4095
      & info [ "max-src" ] ~docv:"N" ~doc:"Largest accepted node id.")
  in
  Cmd.v
    (Cmd.info "collect"
       ~doc:
         "Run the fleet telemetry collector: accept csync-btrace/1 streams \
          from any number of live nodes concurrently over UDP, tolerate \
          per-node loss and reconnects, and keep rewriting the canonical \
          merged fleet trace.  Render the result with csync report --fleet \
          or watch it with csync top --fleet.")
    Term.(
      ret
        (const run $ port_arg $ out_arg $ duration_arg $ snap_arg $ max_src_arg))

(* csync fleet *)
let fleet_cmd =
  let module Live = Csync_runtime.Live in
  let module Collector = Csync_runtime.Collector in
  let module Collect = Csync_obs.Collect in
  let run nodes f duration out base_port period restart seed =
    match
      Csync_core.Params.auto ~n:nodes ~f ~rho:1e-4 ~delta:0.025 ~eps:0.0249
        ~big_p:0.45 ()
    with
    | Error errs ->
      List.iter
        (fun e -> Format.eprintf "error: %a@." Csync_core.Params.pp_error e)
        errs;
      `Error (false, "invalid fleet configuration")
    | Ok params -> (
      let gamma = Csync_core.Params.gamma params in
      let collector = Collector.create ~max_src:(nodes - 1) () in
      let cport = Collector.port collector in
      Format.printf "collector on udp port %d; %d nodes, gamma %.3g s@." cport
        nodes gamma;
      let stop = Atomic.make false in
      let collector_thread =
        Thread.create
          (fun () ->
            let last_snap = ref (Unix.gettimeofday ()) in
            while not (Atomic.get stop) do
              Collector.poll collector ~timeout:0.1;
              let now = Unix.gettimeofday () in
              if now -. !last_snap >= 1.0 then begin
                last_snap := now;
                Collector.write_snapshot collector out
              end
            done)
          ()
      in
      let live =
        Live.run_maintenance ~base_port ~seed ~degrade:true
          ~telemetry_port:cport ~telemetry_period:period ?restart ~params
          ~duration ()
      in
      (* Straggler datagrams from the final emitter flushes. *)
      Collector.poll collector ~timeout:0.3;
      Atomic.set stop true;
      Thread.join collector_thread;
      Collector.write_snapshot collector out;
      let stats = Collect.stats (Collector.collect collector) in
      List.iter
        (fun (s : Collect.node_stats) ->
          Format.printf
            "p%-4d frames %-6d records %-7d gaps %-4d lost %-4d resets %-3d \
             errors %-3d@."
            s.Collect.src s.frames s.records s.gaps s.lost s.resets s.errors)
        stats;
      Format.printf "rejected datagrams: %d@."
        (Collector.rejected collector);
      Collector.close collector;
      Format.printf "wrote %s (%d records)@." out
        (Collect.total_records (Collector.collect collector));
      match Csync_obs.Report.of_file out with
      | Error e -> `Error (false, e)
      | Ok t ->
        let fl = Csync_obs.Report.fleet t in
        let within = fl.Csync_obs.Report.fleet_max <= gamma in
        Format.printf
          "true final skew %.3g s; measured fleet skew %.3g s / gamma %.3g \
           s: %s@."
          live.Live.final_skew fl.Csync_obs.Report.fleet_max gamma
          (if within then "within gamma" else "EXCEEDS gamma");
        let reconnected =
          match restart with
          | None -> true
          | Some (pid, _, _) -> (
            match
              List.find_opt (fun s -> s.Collect.src = pid) stats
            with
            | Some s when s.Collect.resets >= 1 ->
              Format.printf
                "restart p%d: stream reconnected (%d reset%s), reappeared in \
                 the merged trace@."
                pid s.Collect.resets
                (if s.Collect.resets = 1 then "" else "s");
              true
            | _ ->
              Format.printf "restart p%d: stream NEVER RECONNECTED@." pid;
              false)
        in
        if fl.Csync_obs.Report.fleet_pairs = [] then
          `Error (false, "no measured skew pairs (run too short?)")
        else if not within then
          `Error (false, "measured fleet skew exceeds gamma")
        else if not reconnected then
          `Error (false, "restarted node never reconnected")
        else `Ok ())
  in
  let nodes_arg =
    Arg.(value & opt int 5 & info [ "nodes" ] ~doc:"Fleet size (n).")
  in
  let f_arg = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Fault budget.") in
  let duration_arg =
    Arg.(
      value & opt float 9.
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Wall-clock run length (rounds are P = 0.45 s of local time).")
  in
  let out_arg =
    Arg.(
      value & opt string "fleet.btrace"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Merged fleet trace path.")
  in
  let base_port_arg =
    Arg.(
      value & opt int 17_700
      & info [ "base-port" ] ~docv:"PORT"
          ~doc:"First node UDP port (node i binds PORT + i).")
  in
  let period_arg =
    Arg.(
      value & opt float 0.25
      & info [ "period" ] ~docv:"SECONDS" ~doc:"Telemetry flush period.")
  in
  let restart_arg =
    Arg.(
      value
      & opt (some (t3 ~sep:',' int float float)) None
      & info [ "restart" ] ~docv:"PID,STOP,RESUME"
          ~doc:
            "Crash node $(i,PID) at $(i,STOP) seconds after the epoch and \
             restart it at $(i,RESUME) as a fresh process: it rejoins via \
             Section 9.1 reintegration and its telemetry resumes on a fresh \
             stream, exercising the collector's reconnect path.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Clock-injection seed.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Loopback fleet smoke: launch live UDP nodes with per-node \
          telemetry emitters plus the collector, run for a fixed duration \
          (optionally crashing and restarting one node), write the merged \
          fleet trace, and check measured pairwise skew against gamma.  \
          Exits nonzero if the measurement exceeds the bound or a \
          restarted node never reconnects.")
    Term.(
      ret
        (const run $ nodes_arg $ f_arg $ duration_arg $ out_arg
       $ base_port_arg $ period_arg $ restart_arg $ seed_arg))

(* csync report *)
let report_cmd =
  let load file =
    match Csync_obs.Report.of_file file with
    | exception Sys_error e -> Error e
    | Error e -> Error (Printf.sprintf "%s: %s" file e)
    | Ok t -> Ok t
  in
  let run label diff fleet files =
    match (diff, fleet, files) with
    | false, false, [ file ] -> (
      match load file with
      | Error e -> `Error (false, e)
      | Ok t ->
        Csync_obs.Report.render ?focus:label Format.std_formatter t;
        `Ok ())
    | false, true, [ file ] -> (
      match load file with
      | Error e -> `Error (false, e)
      | Ok t ->
        Csync_obs.Report.render_fleet Format.std_formatter t;
        `Ok ())
    | true, false, [ a; b ] -> (
      match (load a, load b) with
      | Error e, _ | _, Error e -> `Error (false, e)
      | Ok ta, Ok tb ->
        Csync_obs.Diff.render Format.std_formatter ~name_a:a ~name_b:b ta tb;
        `Ok ())
    | true, true, _ -> `Error (true, "--diff and --fleet are exclusive")
    | false, _, _ -> `Error (true, "report renders exactly one FILE")
    | true, _, _ -> `Error (true, "--diff aligns exactly two FILEs")
  in
  let label_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "label" ] ~docv:"CELL"
          ~doc:
            "Cell label to focus the per-cell sections on (see the report's \
             Cells section for the choices).")
  in
  let diff_arg =
    let doc =
      "Align two traces by manifest and metric name and render what \
       changed between the runs: manifest drift, monitor-verdict changes, \
       per-round skew/ADJ deltas, histogram shifts, changed counters.  \
       Identical runs render as an explicit \"no differences\" verdict."
    in
    Arg.(value & flag & info [ "diff" ] ~doc)
  in
  let fleet_arg =
    let doc =
      "Render the FILE as a merged fleet trace (from csync collect): \
       measured pairwise skew from the exchanged-timestamp samples \
       against the gamma and per-hop kappa envelopes, with a \
       measured-vs-predicted table, violation lines, and per-node \
       stream accounting."
    in
    Arg.(value & flag & info [ "fleet" ] ~doc)
  in
  let files_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "A trace written by csync trace - JSONL or binary btrace, \
             sniffed by magic (two traces with $(b,--diff)).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a captured trace (skew timelines, ADJ-per-round tables, \
          message-delay histograms, pool utilization, chaos ledger, monitor \
          verdicts, exploration statistics) - or, with --diff, the \
          differences between two traces.")
    Term.(ret (const run $ label_arg $ diff_arg $ fleet_arg $ files_arg))

(* csync topo *)
let topo_cmd =
  let module Graph = Csync_topo.Graph in
  let module Gradient = Csync_topo.Gradient in
  let module Soa = Csync_process.Soa in
  let family_arg =
    let family_conv =
      Arg.enum
        [ ("ring", `Ring); ("grid", `Grid); ("torus", `Torus);
          ("expander", `Expander); ("hier", `Hier); ("complete", `Complete) ]
    in
    let doc =
      "Topology family: $(b,ring) (directed predecessor circulant), \
       $(b,grid)/$(b,torus) (2-d lattice), $(b,expander) (seeded random \
       circulant), $(b,hier) (Welch-Lynch cliques on a leader tree), \
       $(b,complete) (full mesh)."
    in
    Arg.(value & opt family_conv `Ring & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let n_arg =
    Arg.(value & opt int 1000 & info [ "n" ] ~doc:"Number of processes.")
  in
  let degree_arg =
    Arg.(
      value & opt int 8
      & info [ "degree" ] ~doc:"Ring/expander degree (ignored elsewhere).")
  in
  let cluster_arg =
    Arg.(
      value & opt int 16
      & info [ "cluster" ] ~doc:"Clique size (hier only).")
  in
  let branching_arg =
    Arg.(
      value & opt int 4
      & info [ "branching" ] ~doc:"Leader-tree arity (hier only).")
  in
  let seed_arg =
    Arg.(value & opt int 5 & info [ "seed" ] ~doc:"Expander generator seed.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 0
      & info [ "rounds" ]
          ~doc:
            "Also run $(docv) gradient synchronization rounds over the \
             graph (struct-of-arrays model) and print per-round global and \
             local skew against the per-hop allowance kappa."
          ~docv:"R")
  in
  let gain_arg =
    Arg.(
      value & opt float 1.0
      & info [ "gain" ]
          ~doc:"Neighbor-averaging gain in (0, 1]; 1 = full midpoint jump.")
  in
  let run family n degree cluster branching seed rounds gain =
    let build () =
      match family with
      | `Ring -> Graph.ring ~n ~degree:(max 1 (min degree (n - 1)))
      | `Grid | `Torus ->
        (* Squarest factorization of n. *)
        let rows = ref 1 in
        let s = int_of_float (Float.sqrt (float_of_int n)) in
        for d = 1 to s do
          if n mod d = 0 then rows := d
        done;
        if family = `Grid then Graph.grid ~rows:!rows ~cols:(n / !rows)
        else Graph.torus ~rows:!rows ~cols:(n / !rows)
      | `Expander -> Graph.expander ~n ~degree ~seed
      | `Hier -> Graph.hier_tree ~n ~cluster ~branching
      | `Complete -> Graph.complete ~n
    in
    match build () with
    | exception Invalid_argument msg -> `Error (false, msg)
    | g ->
      Format.printf "%a@." Graph.pp g;
      Format.printf "  edges      = %d (directed)@." (Graph.edges g);
      Format.printf "  in-degree  = %d .. %d@." (Graph.min_in_degree g)
        (Graph.max_in_degree g);
      Format.printf "  symmetric  = %b@." (Graph.is_symmetric g);
      Format.printf "  connected  = %b@." (Graph.is_connected g);
      Format.printf "  diameter   = %s@."
        (let d = Graph.diameter g in
         if d = max_int then "inf" else string_of_int d);
      Format.printf "  tolerated Byzantine faults (weakest neighborhood) = %d@."
        (Graph.tolerated_faults g);
      if rounds <= 0 then `Ok ()
      else begin
        let rho = 1e-5 and delta = 0.01 and eps = 0.001 and period = 10. in
        match
          Soa.create ~graph:g ~f:2 ~seed:3 ~rho ~delta ~eps ~period
            ~dispersion:(2. *. eps) ~mode:(Soa.Gradient_avg gain) ~n ()
        with
        | exception Invalid_argument msg -> `Error (false, msg)
        | m ->
          let kappa = Gradient.kappa ~rho ~eps ~period ~gain in
          Format.printf "@.gradient rounds (gain %.2f, kappa %.4g):@." gain
            kappa;
          Format.printf "  %-6s %-12s %-12s %s@." "round" "global" "local"
            "local<=kappa";
          Format.printf "  %-6d %-12.4g %-12.4g -@." 0 (Soa.spread m)
            (Soa.local_skew m);
          for r = 1 to rounds do
            ignore (Csync_harness.Scale.round m);
            let l = Soa.local_skew m in
            Format.printf "  %-6d %-12.4g %-12.4g %s@." r (Soa.spread m) l
              (if l <= kappa then "yes" else "NO")
          done;
          `Ok ()
      end
  in
  Cmd.v
    (Cmd.info "topo"
       ~doc:
         "Inspect a sparse topology (degrees, diameter, symmetry, fault \
          budget) and optionally run gradient synchronization rounds over \
          it.")
    Term.(
      ret
        (const run $ family_arg $ n_arg $ degree_arg $ cluster_arg
        $ branching_arg $ seed_arg $ rounds_arg $ gain_arg))

(* csync top *)
let top_cmd =
  let run label interval fleet once file =
    match Csync_obs.Top.watch ?focus:label ~interval ~fleet ~once file with
    | Ok () -> `Ok ()
    | Error e -> `Error (false, e)
  in
  let label_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "label" ] ~docv:"CELL"
          ~doc:"Cell label to focus the sparkline/phase sections on.")
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Refresh period (clamped to >= 0.1s).")
  in
  let fleet_arg =
    Arg.(
      value & flag
      & info [ "fleet" ]
          ~doc:
            "Per-node fleet panel over a merged fleet trace (the file \
             csync collect keeps rewriting): round, measured skew, stream \
             frames/gaps, emitter drops, and last-seen per node.")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Render a single frame (no ANSI clear, no loop) and exit - \
             the scriptable / CI smoke mode.")
  in
  let file_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Trace to watch (JSONL or binary btrace), typically the \
             $(b,--out) of a csync trace still running.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal view of a trace: round counter, convergence \
          sparklines, round-phase time bars, monitor verdict lights and \
          fault counters, redrawn in place as the capture grows.  Point \
          it at the --out file of a running csync trace, or replay a \
          finished one.")
    Term.(
      ret (const run $ label_arg $ interval_arg $ fleet_arg $ once_arg $ file_arg))

let main_cmd =
  let doc =
    "Fault-tolerant clock synchronization (Welch & Lynch 1984/1988) - \
     simulator, experiments, and parameter calculus."
  in
  Cmd.group (Cmd.info "csync" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; params_cmd; simulate_cmd; chaos_cmd; check_cmd;
      export_cmd; bench_cmd; trace_cmd; report_cmd; top_cmd; topo_cmd;
      collect_cmd; fleet_cmd ]

let () = exit (Cmd.eval main_cmd)
